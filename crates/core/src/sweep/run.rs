//! The crash-safe sweep driver: runs a [`SweepPlan`] cell by cell under a
//! per-cell robustness envelope and streams terminal outcomes into the
//! journal.
//!
//! The envelope, per cell:
//!
//! * **Watchdog.** One background thread polls a shared deadline registry;
//!   an expired cell's [`CancelToken`] fires and the simulator stops at its
//!   next event batch with `SimError::TimedOut` — cooperative, no thread
//!   killing, no poisoned shared state.
//! * **Bounded retry.** Only timeouts retry (they are the one wall-clock —
//!   hence transient — failure mode; typed simulator errors and panics are
//!   deterministic), with exponential backoff, up to `max_retries` extra
//!   attempts. Retries stay in-process: only the *terminal* outcome is
//!   journaled.
//! * **Panic quarantine.** A panicking cell is recorded as a `poisoned` row
//!   carrying the payload, and the grid keeps going.
//!
//! Resume: `resume: true` replays the journal first, skips every cell with
//! a valid terminal row, and appends the rest. The final [`SweepSummary`]
//! is *always* rebuilt from a fresh journal replay, so an interrupted and
//! resumed sweep reports byte-identical results to an uninterrupted one.

use crate::policy::PolicySpec;
use crate::runner::{try_run_policy, PolicyRun, RunOptions};
use crate::sweep::grid::{Cell, SweepPlan};
use crate::sweep::journal::{self, CellRow, CellStatus, JournalWriter};
use crate::sweep::panic_message;
use fairsched_obs::counters;
use fairsched_sim::{CancelToken, FaultConfig, SimError};
use fairsched_workload::job::Job;
use fairsched_workload::CplantModel;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Everything a sweep needs beyond the grid itself.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The grid to run.
    pub plan: SweepPlan,
    /// Journal path (created, or appended to under `resume`).
    pub journal: PathBuf,
    /// Wall-clock budget per cell attempt; `None` disables the watchdog.
    pub timeout_per_cell: Option<Duration>,
    /// Extra attempts after a timeout (0 = no retry).
    pub max_retries: u32,
    /// Replay the journal and skip completed cells instead of truncating.
    pub resume: bool,
    /// Worker threads (`None`: available parallelism).
    pub threads: Option<usize>,
}

/// Aggregate health of a finished grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridState {
    /// Every cell has an `ok` row.
    Complete,
    /// Some cells failed or timed out (typed rows), none panicked.
    Partial,
    /// At least one cell is quarantined with a panic payload.
    Poisoned,
}

/// What a sweep (fresh or resumed) amounted to, rebuilt from the journal.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Cells in the plan.
    pub total: u64,
    /// Cells with an `ok` row.
    pub ok: u64,
    /// Cells rejected with a typed simulator error.
    pub failed: u64,
    /// Cells that exhausted their watchdog budget.
    pub timed_out: u64,
    /// Cells quarantined after a panic.
    pub poisoned: u64,
    /// Cells this invocation skipped because the journal already had them.
    pub resumed: u64,
    /// One row per cell, sorted by cell index.
    pub rows: Vec<CellRow>,
}

impl SweepSummary {
    /// The graceful-degradation verdict.
    pub fn grid_state(&self) -> GridState {
        if self.poisoned > 0 {
            GridState::Poisoned
        } else if self.ok == self.total {
            GridState::Complete
        } else {
            GridState::Partial
        }
    }
}

impl std::fmt::Display for SweepSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "sweep: {}/{} cells ok ({} failed, {} timed out, {} poisoned; {} resumed)",
            self.ok, self.total, self.failed, self.timed_out, self.poisoned, self.resumed
        )?;
        match self.grid_state() {
            GridState::Complete => write!(f, "grid complete"),
            GridState::Partial => write!(
                f,
                "grid PARTIAL: inspect failed/timed_out rows before trusting aggregates"
            ),
            GridState::Poisoned => write!(
                f,
                "grid POISONED: at least one cell panicked; its row carries the payload"
            ),
        }
    }
}

/// The deadline registry one watchdog thread polls. Cells arm a guard
/// before each attempt and disarm it after; the watchdog fires the token of
/// any guard past its deadline.
struct Watchdog {
    registry: Arc<Mutex<Vec<(u64, Instant, CancelToken)>>>,
    shutdown: Arc<AtomicBool>,
    next_id: AtomicU64,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    fn spawn(poll: Duration) -> Self {
        let registry: Arc<Mutex<Vec<(u64, Instant, CancelToken)>>> =
            Arc::new(Mutex::new(Vec::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let registry = Arc::clone(&registry);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::Acquire) {
                    std::thread::sleep(poll);
                    let now = Instant::now();
                    let mut reg = registry.lock().unwrap_or_else(PoisonError::into_inner);
                    reg.retain(|(_, deadline, token)| {
                        if *deadline <= now {
                            token.cancel();
                            false
                        } else {
                            true
                        }
                    });
                }
            })
        };
        Watchdog {
            registry,
            shutdown,
            next_id: AtomicU64::new(0),
            handle: Some(handle),
        }
    }

    fn arm(&self, budget: Duration) -> (u64, CancelToken) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let token = CancelToken::new();
        self.registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((id, Instant::now() + budget, token.clone()));
        (id, token)
    }

    fn disarm(&self, id: u64) {
        self.registry
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .retain(|(gid, _, _)| *gid != id);
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Backoff before retry attempt `n` (1-based): 10ms · 2^(n-1), capped at
/// one second. Timeouts usually mean transient machine load; backing off
/// gives the contention a chance to clear without stalling the grid.
fn backoff(attempt: u32) -> Duration {
    Duration::from_millis(10u64.saturating_mul(1 << attempt.min(7).saturating_sub(1)))
        .min(Duration::from_secs(1))
}

/// Runs one cell to a terminal row under the robustness envelope. Generic
/// over the actual runner so tests can inject panicking or hanging cells.
fn execute_cell<F>(
    plan: &SweepPlan,
    cell: &Cell,
    timeout: Option<Duration>,
    max_retries: u32,
    watchdog: Option<&Watchdog>,
    run: F,
) -> CellRow
where
    F: Fn(&PolicySpec, &FaultConfig, Option<CancelToken>) -> Result<PolicyRun, SimError>,
{
    let policy = &plan.policies[cell.policy_idx];
    let faults = plan.cell_faults(cell);
    let base = CellRow {
        cell: cell.index,
        policy: policy.id.to_string(),
        workload_seed: plan.seeds[cell.seed_idx],
        fault: plan.faults[cell.fault_idx].label.clone(),
        fault_seed: faults.seed,
        status: CellStatus::Ok,
        attempts: 0,
        detail: String::new(),
        metrics: None,
    };
    let mut attempts = 0;
    loop {
        attempts += 1;
        let guard = match (timeout, watchdog) {
            (Some(budget), Some(dog)) => Some(dog.arm(budget)),
            _ => None,
        };
        let token = guard.as_ref().map(|(_, t)| t.clone());
        let result = catch_unwind(AssertUnwindSafe(|| run(policy, &faults, token)));
        if let Some((id, _)) = &guard {
            watchdog.expect("guard implies watchdog").disarm(*id);
        }
        match result {
            Ok(Ok(run)) => {
                counters::record_sweep_cell_ok();
                return CellRow {
                    attempts,
                    metrics: Some(run.outcome.metrics()),
                    ..base
                };
            }
            Ok(Err(e @ SimError::TimedOut { .. })) => {
                if attempts <= max_retries {
                    counters::record_sweep_retry();
                    std::thread::sleep(backoff(attempts));
                    continue;
                }
                counters::record_sweep_timed_out();
                return CellRow {
                    status: CellStatus::TimedOut,
                    attempts,
                    detail: e.to_string(),
                    ..base
                };
            }
            Ok(Err(e)) => {
                // Typed, deterministic rejection: retrying cannot help.
                return CellRow {
                    status: CellStatus::Failed,
                    attempts,
                    detail: e.to_string(),
                    ..base
                };
            }
            Err(payload) => {
                counters::record_sweep_poisoned();
                return CellRow {
                    status: CellStatus::Poisoned,
                    attempts,
                    detail: panic_message(payload),
                    ..base
                };
            }
        }
    }
}

/// Runs (or resumes) the sweep described by `cfg`. Simulation-level
/// failures become journal rows; only infrastructure problems (journal IO,
/// a resume against the wrong grid) surface as errors.
pub fn run_sweep(cfg: &SweepConfig) -> std::io::Result<SweepSummary> {
    let plan = &cfg.plan;
    let fingerprint = plan.fingerprint();
    let (done, mut writer) = if cfg.resume {
        let replay = journal::replay(&cfg.journal)?;
        if let Some(fp) = replay.fingerprint {
            if fp != fingerprint {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "journal {} was written for a different grid \
                         (fingerprint {fp:#x}, plan is {fingerprint:#x})",
                        cfg.journal.display()
                    ),
                ));
            }
            (replay.done_cells(), JournalWriter::append(&cfg.journal)?)
        } else {
            // Nothing valid to resume from (missing or headerless file):
            // start fresh.
            (
                HashSet::new(),
                JournalWriter::create(&cfg.journal, fingerprint, plan.len())?,
            )
        }
    } else {
        (
            HashSet::new(),
            JournalWriter::create(&cfg.journal, fingerprint, plan.len())?,
        )
    };
    let resumed = done.len() as u64;

    let pending: Vec<Cell> = plan.cells().filter(|c| !done.contains(&c.index)).collect();
    // One shared immutable workload per seed, generated only for seeds that
    // still have pending cells.
    let needed: HashSet<usize> = pending.iter().map(|c| c.seed_idx).collect();
    let traces: Vec<Option<Vec<Job>>> = plan
        .seeds
        .iter()
        .enumerate()
        .map(|(i, &seed)| {
            needed.contains(&i).then(|| {
                let mut jobs = CplantModel::new(seed)
                    .with_scale(plan.scale)
                    .with_nodes(plan.nodes)
                    .generate();
                if plan.exact_estimates {
                    // The exact-estimates axis: perfect size information,
                    // the idealized upper bound the calibrated Figure 5–7
                    // over-estimation model is compared against.
                    for job in &mut jobs {
                        job.estimate = job.runtime;
                    }
                }
                jobs
            })
        })
        .collect();

    let watchdog = cfg.timeout_per_cell.map(|t| {
        // Poll an order of magnitude finer than the budget, within sane
        // bounds, so a timeout overshoots by at most ~one poll.
        Watchdog::spawn((t / 10).clamp(Duration::from_millis(5), Duration::from_millis(50)))
    });

    let workers = cfg
        .threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .clamp(1, pending.len().max(1));

    // Worker panics inside a cell are quarantined into rows; silence the
    // global hook's backtrace noise for the duration (same trade as
    // `try_run_policies_with`).
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let writer_mutex = Mutex::new(&mut writer);
    let next = AtomicUsize::new(0);
    let io_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = pending.get(i) else {
                    return;
                };
                let trace = traces[cell.seed_idx]
                    .as_deref()
                    .expect("pending cell's trace was generated");
                let row = execute_cell(
                    plan,
                    cell,
                    cfg.timeout_per_cell,
                    cfg.max_retries,
                    watchdog.as_ref(),
                    |policy, faults, cancel| {
                        let opts = RunOptions {
                            faults: faults.clone(),
                            cancel,
                            ..RunOptions::default()
                        };
                        try_run_policy(trace, policy, plan.nodes, &opts)
                    },
                );
                let mut w = writer_mutex.lock().unwrap_or_else(PoisonError::into_inner);
                if let Err(e) = w.write_row(&row) {
                    io_error
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .get_or_insert(e);
                    return;
                }
            });
        }
    });
    std::panic::set_hook(prev);
    drop(watchdog);
    writer.sync()?;
    drop(writer);
    if let Some(e) = io_error
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
    {
        return Err(e);
    }

    // The summary is rebuilt from a fresh replay — not from in-memory
    // results — so a resumed sweep reports exactly what an uninterrupted
    // one would.
    summarize(cfg, resumed)
}

fn summarize(cfg: &SweepConfig, resumed: u64) -> std::io::Result<SweepSummary> {
    let replay = journal::replay(&cfg.journal)?;
    let rows = replay.latest_rows();
    let count = |s: CellStatus| rows.iter().filter(|r| r.status == s).count() as u64;
    Ok(SweepSummary {
        total: cfg.plan.len(),
        ok: count(CellStatus::Ok),
        failed: count(CellStatus::Failed),
        timed_out: count(CellStatus::TimedOut),
        poisoned: count(CellStatus::Poisoned),
        resumed,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::grid::FaultPoint;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fairsched-sweep-run-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn tiny_plan() -> SweepPlan {
        SweepPlan {
            seeds: vec![5, 6],
            policies: vec![
                PolicySpec::baseline(),
                PolicySpec::by_id("easy.nomax").unwrap(),
            ],
            faults: vec![FaultPoint::clean()],
            scale: 0.01,
            nodes: 1024,
            exact_estimates: false,
        }
    }

    fn sweep_cfg(name: &str, plan: SweepPlan) -> SweepConfig {
        SweepConfig {
            plan,
            journal: tmp(name),
            timeout_per_cell: None,
            max_retries: 0,
            resume: false,
            threads: Some(2),
        }
    }

    #[test]
    fn a_clean_grid_completes_with_metrics_everywhere() {
        let cfg = sweep_cfg("clean.jsonl", tiny_plan());
        let summary = run_sweep(&cfg).unwrap();
        assert_eq!(summary.total, 4);
        assert_eq!(summary.ok, 4);
        assert_eq!(summary.grid_state(), GridState::Complete);
        assert!(summary.rows.iter().all(|r| r.metrics.is_some()));
        assert_eq!(
            summary.rows.iter().map(|r| r.cell).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn resume_skips_completed_cells_and_matches_a_fresh_run() {
        let fresh = run_sweep(&sweep_cfg("fresh.jsonl", tiny_plan())).unwrap();

        // Interrupted run: journal only the first two cells, then resume.
        let mut partial = sweep_cfg("partial.jsonl", tiny_plan());
        let fp = partial.plan.fingerprint();
        {
            let mut w = JournalWriter::create(&partial.journal, fp, 4).unwrap();
            for row in fresh.rows.iter().take(2) {
                w.write_row(row).unwrap();
            }
        }
        partial.resume = true;
        let resumed = run_sweep(&partial).unwrap();
        assert_eq!(resumed.resumed, 2, "two cells must be skipped");
        assert_eq!(resumed.ok, 4);
        // Byte-level equality of every recovered row: the resumed grid is
        // indistinguishable from the uninterrupted one.
        let fresh_lines: Vec<String> = fresh.rows.iter().map(CellRow::to_jsonl).collect();
        let resumed_lines: Vec<String> = resumed.rows.iter().map(CellRow::to_jsonl).collect();
        assert_eq!(fresh_lines, resumed_lines);
    }

    #[test]
    fn resume_against_a_different_grid_is_refused() {
        let cfg = sweep_cfg("grid-a.jsonl", tiny_plan());
        run_sweep(&cfg).unwrap();
        let mut other = cfg.clone();
        other.plan.seeds.push(99);
        other.resume = true;
        let err = run_sweep(&other).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("different grid"));
    }

    #[test]
    fn a_panicking_cell_is_quarantined_not_fatal() {
        let plan = tiny_plan();
        let cell = plan.cell(1);
        let row = execute_cell(&plan, &cell, None, 3, None, |_, _, _| {
            panic!("cell exploded")
        });
        assert_eq!(row.status, CellStatus::Poisoned);
        assert_eq!(row.attempts, 1, "panics never retry");
        assert!(row.detail.contains("cell exploded"));
        assert!(row.metrics.is_none());
    }

    #[test]
    fn timeouts_retry_with_bounded_attempts() {
        let plan = tiny_plan();
        let cell = plan.cell(0);
        let tries = AtomicUsize::new(0);
        let row = execute_cell(&plan, &cell, None, 2, None, |_, _, _| {
            tries.fetch_add(1, Ordering::Relaxed);
            Err(SimError::TimedOut { at: 0 })
        });
        assert_eq!(row.status, CellStatus::TimedOut);
        assert_eq!(row.attempts, 3, "1 try + 2 retries");
        assert_eq!(tries.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn typed_errors_fail_without_retry() {
        let plan = tiny_plan();
        let cell = plan.cell(0);
        let tries = AtomicUsize::new(0);
        let row = execute_cell(&plan, &cell, None, 5, None, |_, _, _| {
            tries.fetch_add(1, Ordering::Relaxed);
            Err(SimError::InvalidConfig {
                reason: "nope".into(),
            })
        });
        assert_eq!(row.status, CellStatus::Failed);
        assert_eq!(tries.load(Ordering::Relaxed), 1);
        assert!(row.detail.contains("nope"));
    }

    #[test]
    fn the_watchdog_cancels_a_hanging_cell() {
        let plan = tiny_plan();
        let cell = plan.cell(0);
        let dog = Watchdog::spawn(Duration::from_millis(5));
        let row = execute_cell(
            &plan,
            &cell,
            Some(Duration::from_millis(30)),
            0,
            Some(&dog),
            |_, _, cancel| {
                // Simulate a wedged cell: spin until the watchdog fires.
                let token = cancel.expect("watchdog armed");
                let start = Instant::now();
                while !token.is_cancelled() {
                    assert!(
                        start.elapsed() < Duration::from_secs(10),
                        "watchdog never fired"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(SimError::TimedOut { at: 123 })
            },
        );
        assert_eq!(row.status, CellStatus::TimedOut);
    }

    #[test]
    fn a_grid_of_failing_cells_reports_partial_state() {
        // Drive the full run_sweep path with a plan whose fault point the
        // simulator rejects as a typed error (a certain-crash rate can
        // never terminate): every cell fails, none poison the grid.
        let mut plan = tiny_plan();
        plan.faults = vec![FaultPoint {
            label: "broken".into(),
            config: FaultConfig {
                job_crash_rate: 1.5,
                ..FaultConfig::default()
            },
        }];
        let cfg = sweep_cfg("failing.jsonl", plan);
        let summary = run_sweep(&cfg).unwrap();
        assert_eq!(summary.ok, 0);
        assert_eq!(summary.failed, 4);
        assert_eq!(summary.grid_state(), GridState::Partial);
        assert!(summary
            .rows
            .iter()
            .all(|r| r.detail.contains("job_crash_rate")));
    }

    #[test]
    fn fault_cells_inject_identically_across_fresh_and_resumed_runs() {
        // The deterministic --fault-seed satellite: a faulted grid resumed
        // from a partial journal must produce the same rows (same derived
        // sub-seeds, same metrics) as the uninterrupted run.
        let plan = SweepPlan {
            seeds: vec![11],
            policies: vec![PolicySpec::baseline()],
            faults: vec![
                FaultPoint::clean(),
                FaultPoint {
                    label: "crashy".into(),
                    config: FaultConfig {
                        job_crash_rate: 0.3,
                        seed: 7,
                        ..FaultConfig::default()
                    },
                },
            ],
            scale: 0.01,
            nodes: 1024,
            exact_estimates: false,
        };
        let fresh = run_sweep(&sweep_cfg("faults-fresh.jsonl", plan.clone())).unwrap();
        assert_eq!(fresh.ok, 2);
        let faulted = &fresh.rows[1];
        assert_eq!(faulted.fault, "crashy");
        assert_eq!(
            faulted.fault_seed,
            crate::sweep::grid::cell_fault_seed(7, 1),
            "journaled sub-seed follows the splitmix derivation"
        );

        // Resume with only the clean cell journaled: the faulted cell
        // re-runs and must reproduce the fresh row exactly.
        let mut partial = sweep_cfg("faults-partial.jsonl", plan.clone());
        {
            let mut w = JournalWriter::create(&partial.journal, plan.fingerprint(), 2).unwrap();
            w.write_row(&fresh.rows[0]).unwrap();
        }
        partial.resume = true;
        let resumed = run_sweep(&partial).unwrap();
        assert_eq!(resumed.rows[1].to_jsonl(), fresh.rows[1].to_jsonl());
    }
}
