//! ASCII schedule visualization: the paper's Figures 1–2 as renderable
//! output for any simulated schedule.
//!
//! Two views:
//! * [`gantt`] — one row per job, a bar from start to end (readable for up
//!   to a few dozen jobs; larger schedules are truncated with a note);
//! * [`utilization_strip`] — one character column per time slice showing
//!   machine occupancy 0–9 plus `#` for full, for schedules of any size.

use fairsched_sim::{JobRecord, Schedule};
use fairsched_workload::time::{format_duration, Time};
use std::fmt::Write as _;

/// Maximum rows [`gantt`] prints before truncating.
pub const MAX_GANTT_ROWS: usize = 48;

/// Renders a per-job Gantt chart, `cols` characters wide, jobs sorted by
/// start time. `.` marks queued wait (submit → start), `█` marks execution.
pub fn gantt(schedule: &Schedule, cols: usize) -> String {
    assert!(cols >= 10, "need at least 10 columns");
    let records = &schedule.records;
    if records.is_empty() {
        return "(empty schedule)\n".to_string();
    }
    let t0 = records.iter().map(|r| r.submit).min().expect("non-empty");
    let t1 = records.iter().map(|r| r.end).max().expect("non-empty");
    let span = (t1 - t0).max(1);
    let scale = |t: Time| -> usize { ((t - t0) as u128 * cols as u128 / span as u128) as usize };

    let mut rows: Vec<&JobRecord> = records.iter().collect();
    rows.sort_by_key(|r| (r.start, r.id));
    let truncated = rows.len() > MAX_GANTT_ROWS;
    rows.truncate(MAX_GANTT_ROWS);

    let mut out = String::new();
    writeln!(
        out,
        "time 0 = {t0}s, full width = {} ({} jobs)",
        format_duration(span),
        records.len()
    )
    .expect("write to String");
    for r in rows {
        let submit_col = scale(r.submit).min(cols - 1);
        let start_col = scale(r.start).min(cols - 1);
        let end_col = scale(r.end).clamp(start_col + 1, cols);
        let mut bar = vec![b' '; cols];
        for c in bar.iter_mut().take(start_col).skip(submit_col) {
            *c = b'.';
        }
        for c in bar.iter_mut().take(end_col).skip(start_col) {
            *c = b'#';
        }
        writeln!(
            out,
            "{:>6} {:>4}n |{}|{}",
            r.id.to_string(),
            r.nodes,
            String::from_utf8(bar).expect("ASCII"),
            if r.killed { " (killed)" } else { "" },
        )
        .expect("write to String");
    }
    if truncated {
        writeln!(
            out,
            "… {} more jobs not shown",
            records.len() - MAX_GANTT_ROWS
        )
        .expect("write to String");
    }
    out
}

/// Renders machine occupancy over time as one line: digits are deciles of
/// utilization (`0` = idle … `9` = ≥90%), `#` = completely full.
pub fn utilization_strip(schedule: &Schedule, cols: usize) -> String {
    assert!(cols >= 10);
    let records = &schedule.records;
    if records.is_empty() {
        return "(empty schedule)\n".to_string();
    }
    let t0 = records.iter().map(|r| r.start).min().expect("non-empty");
    let t1 = records.iter().map(|r| r.end).max().expect("non-empty");
    let span = (t1 - t0).max(1);

    // Busy node-seconds per column via exact interval intersection.
    let col_span = span as f64 / cols as f64;
    let mut busy = vec![0.0f64; cols];
    for r in records {
        let s = (r.start - t0) as f64;
        let e = (r.end - t0) as f64;
        let first = (s / col_span).floor() as usize;
        let last = ((e / col_span).ceil() as usize).min(cols);
        for (c, b) in busy.iter_mut().enumerate().take(last).skip(first) {
            let cs = c as f64 * col_span;
            let ce = cs + col_span;
            let overlap = (e.min(ce) - s.max(cs)).max(0.0);
            *b += overlap * r.nodes as f64;
        }
    }
    let cap = schedule.nodes as f64 * col_span;
    let mut strip = String::with_capacity(cols + 16);
    strip.push('|');
    for b in busy {
        let frac = (b / cap).clamp(0.0, 1.0);
        strip.push(if frac >= 0.999 {
            '#'
        } else {
            char::from_digit((frac * 10.0) as u32, 10).expect("single digit")
        });
    }
    strip.push('|');
    strip.push('\n');
    strip
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_sim::{simulate, EngineKind, NullObserver, SimConfig, SimOptions};
    use fairsched_workload::job::Job;

    fn schedule(trace: &[Job], nodes: u32, engine: EngineKind) -> Schedule {
        let cfg = SimConfig {
            nodes,
            engine,
            ..Default::default()
        };
        simulate(trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap()
    }

    #[test]
    fn gantt_shows_wait_and_run_phases() {
        // Job 2 waits 100s behind job 1.
        let trace = [
            Job::new(1, 1, 1, 0, 10, 100, 100),
            Job::new(2, 2, 1, 0, 10, 100, 100),
        ];
        let s = schedule(&trace, 10, EngineKind::NoGuarantee);
        let g = gantt(&s, 40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 jobs
                                    // Job 1 runs from the left edge.
        assert!(lines[1].contains("j1"));
        assert!(lines[1].contains("|##"));
        // Job 2 shows dots (wait) before its bar.
        assert!(lines[2].contains("j2"));
        assert!(lines[2].contains(".#") || lines[2].contains(". #"));
    }

    #[test]
    fn gantt_marks_killed_jobs() {
        let trace = [
            Job::new(1, 1, 1, 0, 10, 1000, 100),
            Job::new(2, 2, 1, 50, 10, 50, 50),
        ];
        let s = schedule(&trace, 10, EngineKind::NoGuarantee);
        let g = gantt(&s, 40);
        assert!(g.contains("(killed)"));
    }

    #[test]
    fn gantt_truncates_large_schedules() {
        let trace = fairsched_workload::synthetic::random_trace(3, 200, 10, 1000);
        let s = schedule(&trace, 10, EngineKind::NoGuarantee);
        let g = gantt(&s, 60);
        assert!(g.contains("more jobs not shown"));
        assert!(g.lines().count() <= MAX_GANTT_ROWS + 2);
    }

    #[test]
    fn utilization_strip_reflects_occupancy() {
        // Half the machine busy the whole time → all '5' columns.
        let trace = [Job::new(1, 1, 1, 0, 5, 1000, 1000)];
        let s = schedule(&trace, 10, EngineKind::NoGuarantee);
        let strip = utilization_strip(&s, 20);
        let inner: String = strip.trim_end().trim_matches('|').chars().collect();
        assert_eq!(inner.len(), 20);
        assert!(inner.chars().all(|c| c == '5'), "{strip}");
    }

    #[test]
    fn utilization_strip_shows_full_machine_as_hash() {
        let trace = [Job::new(1, 1, 1, 0, 10, 1000, 1000)];
        let s = schedule(&trace, 10, EngineKind::NoGuarantee);
        let strip = utilization_strip(&s, 15);
        assert!(strip.contains('#'));
        assert!(!strip.contains('5'));
    }

    #[test]
    fn empty_schedules_render_gracefully() {
        let s = schedule(&[], 10, EngineKind::NoGuarantee);
        assert_eq!(gantt(&s, 40), "(empty schedule)\n");
        assert_eq!(utilization_strip(&s, 40), "(empty schedule)\n");
    }
}
