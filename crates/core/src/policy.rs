//! The scheduling policies under study (§5.5), as data.
//!
//! A [`PolicySpec`] is the declarative description of one row of the
//! paper's figures: which backfilling engine, what starvation-queue rules,
//! and whether a maximum-runtime limit applies. [`PolicySpec::sim_config`]
//! lowers it onto the simulator.

use fairsched_sim::engine::{composition_of, Composition};
use fairsched_sim::{EngineKind, HeavyUserRule, RuntimeLimit, SimConfig, StarvationConfig};
use fairsched_workload::time::HOUR;

/// The 72-hour maximum runtime §5.1 proposes.
pub const RUNTIME_LIMIT_72H: RuntimeLimit = RuntimeLimit { limit: 72 * HOUR };

/// A named scheduling policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySpec {
    /// The paper's identifier, e.g. `"cplant24.nomax.all"`.
    pub id: &'static str,
    /// Backfilling engine.
    pub engine: EngineKind,
    /// Starvation queue (no-guarantee policies only).
    pub starvation: Option<StarvationConfig>,
    /// Maximum-runtime chunking, if any.
    pub runtime_limit: Option<RuntimeLimit>,
}

impl PolicySpec {
    const fn cplant(
        id: &'static str,
        entry_hours: u64,
        heavy_barred: bool,
        limited: bool,
    ) -> PolicySpec {
        PolicySpec {
            id,
            engine: EngineKind::NoGuarantee,
            starvation: Some(StarvationConfig {
                entry_delay: entry_hours * HOUR,
                heavy_rule: if heavy_barred {
                    Some(HeavyUserRule { mean_multiple: 2.0 })
                } else {
                    None
                },
            }),
            runtime_limit: if limited {
                Some(RUNTIME_LIMIT_72H)
            } else {
                None
            },
        }
    }

    const fn conservative(id: &'static str, dynamic: bool, limited: bool) -> PolicySpec {
        PolicySpec {
            id,
            engine: EngineKind::Conservative { dynamic },
            starvation: None,
            runtime_limit: if limited {
                Some(RUNTIME_LIMIT_72H)
            } else {
                None
            },
        }
    }

    /// The original CPlant scheduler: no-guarantee backfilling, fairshare
    /// order, 24 h starvation entry, open to all users, no runtime limit.
    pub const fn baseline() -> PolicySpec {
        PolicySpec::cplant("cplant24.nomax.all", 24, false, false)
    }

    /// All nine policies of §5.5, in the paper's order.
    pub fn paper_policies() -> Vec<PolicySpec> {
        vec![
            PolicySpec::baseline(),
            PolicySpec::cplant("cplant72.nomax.all", 72, false, false),
            PolicySpec::cplant("cplant24.nomax.fair", 24, true, false),
            PolicySpec::cplant("cplant24.72max.all", 24, false, true),
            PolicySpec::cplant("cplant72.72max.fair", 72, true, true),
            PolicySpec::conservative("cons.nomax", false, false),
            PolicySpec::conservative("cons.72max", false, true),
            PolicySpec::conservative("consdyn.nomax", true, false),
            PolicySpec::conservative("consdyn.72max", true, true),
        ]
    }

    /// The "minor changes" subset (§6.1, Figures 8–13): the baseline plus
    /// the four small modifications.
    pub fn minor_policies() -> Vec<PolicySpec> {
        PolicySpec::paper_policies().into_iter().take(5).collect()
    }

    /// The conservative comparison set (§6.2, Figures 16 and 18): the
    /// baseline plus the four conservative variants.
    pub fn conservative_set() -> Vec<PolicySpec> {
        let all = PolicySpec::paper_policies();
        let mut out = vec![all[0].clone()];
        out.extend(all.into_iter().skip(5));
        out
    }

    /// Aggressive (EASY) backfilling with the fairshare order — not one of
    /// the paper's nine, but described in its introduction; used by the
    /// extension benches.
    pub const fn easy() -> PolicySpec {
        PolicySpec {
            id: "easy.nomax",
            engine: EngineKind::Easy,
            starvation: None,
            runtime_limit: None,
        }
    }

    /// Strict FCFS without backfilling — the §1 strawman (Figure 1): fair
    /// in arrival order but with poor utilization. Reference point for the
    /// claims the paper builds on.
    pub const fn fcfs_no_backfill() -> PolicySpec {
        PolicySpec {
            id: "fcfs.nobackfill",
            engine: EngineKind::FcfsNoBackfill,
            starvation: None,
            runtime_limit: None,
        }
    }

    /// Looks a policy up by its paper identifier (the nine of §5.5 plus the
    /// `"easy.nomax"` and `"fcfs.nobackfill"` reference points).
    pub fn by_id(id: &str) -> Option<PolicySpec> {
        match id {
            "easy.nomax" => Some(PolicySpec::easy()),
            "fcfs.nobackfill" => Some(PolicySpec::fcfs_no_backfill()),
            _ => PolicySpec::paper_policies()
                .into_iter()
                .find(|p| p.id == id),
        }
    }

    /// The declarative strategy composition this policy's engine resolves
    /// to: which queue-order strategy, reservation ledger, and backfill
    /// rule make it up. Every policy — the paper's nine included — is a row
    /// of this table; the starvation queue and runtime limit are simulator
    /// configuration layered on top, not part of the engine composition.
    pub fn composition(&self) -> Composition {
        composition_of(self.engine)
    }

    /// Lowers this policy onto a simulator configuration for a
    /// `nodes`-wide machine. Everything not policy-specific (fairshare
    /// decay, queue order, kill rule) keeps the CPlant defaults.
    pub fn sim_config(&self, nodes: u32) -> SimConfig {
        SimConfig {
            nodes,
            engine: self.engine,
            starvation: self.starvation,
            runtime_limit: self.runtime_limit,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_sim::QueueOrder;

    #[test]
    fn there_are_exactly_nine_paper_policies_with_the_published_names() {
        let names: Vec<&str> = PolicySpec::paper_policies().iter().map(|p| p.id).collect();
        assert_eq!(
            names,
            vec![
                "cplant24.nomax.all",
                "cplant72.nomax.all",
                "cplant24.nomax.fair",
                "cplant24.72max.all",
                "cplant72.72max.fair",
                "cons.nomax",
                "cons.72max",
                "consdyn.nomax",
                "consdyn.72max",
            ]
        );
    }

    #[test]
    fn policy_knobs_match_their_names() {
        let p = PolicySpec::by_id("cplant72.72max.fair").unwrap();
        let s = p.starvation.unwrap();
        assert_eq!(s.entry_delay, 72 * HOUR);
        assert!(s.heavy_rule.is_some());
        assert_eq!(p.runtime_limit, Some(RUNTIME_LIMIT_72H));
        assert_eq!(p.engine, EngineKind::NoGuarantee);

        let c = PolicySpec::by_id("consdyn.nomax").unwrap();
        assert_eq!(c.engine, EngineKind::Conservative { dynamic: true });
        assert!(c.starvation.is_none());
        assert!(c.runtime_limit.is_none());

        let c72 = PolicySpec::by_id("cons.72max").unwrap();
        assert_eq!(c72.engine, EngineKind::Conservative { dynamic: false });
        assert_eq!(c72.runtime_limit, Some(RUNTIME_LIMIT_72H));
    }

    #[test]
    fn subsets_match_the_figures() {
        let minor: Vec<&str> = PolicySpec::minor_policies().iter().map(|p| p.id).collect();
        assert_eq!(minor.len(), 5);
        assert!(minor.iter().all(|n| n.starts_with("cplant")));

        let cons: Vec<&str> = PolicySpec::conservative_set()
            .iter()
            .map(|p| p.id)
            .collect();
        assert_eq!(
            cons,
            vec![
                "cplant24.nomax.all",
                "cons.nomax",
                "cons.72max",
                "consdyn.nomax",
                "consdyn.72max"
            ]
        );
    }

    #[test]
    fn sim_config_keeps_cplant_defaults() {
        let cfg = PolicySpec::baseline().sim_config(512);
        assert_eq!(cfg.nodes, 512);
        assert_eq!(cfg.order, QueueOrder::Fairshare);
        assert_eq!(cfg.engine, EngineKind::NoGuarantee);
    }

    #[test]
    fn unknown_ids_return_none() {
        assert!(PolicySpec::by_id("cplant48.nomax.all").is_none());
    }

    #[test]
    fn nine_policies_decompose_into_the_documented_strategy_table() {
        use fairsched_sim::engine::{LedgerKind, OrderKind, RuleKind};
        // The nine paper policies collapse onto three engine compositions:
        // the five CPlant rows share the starvation-promotion greedy walk
        // (their knobs live in SimConfig, not the engine), and the four
        // conservative rows split only on the static/dynamic ledger.
        let expect = |id: &str| PolicySpec::by_id(id).unwrap().composition();
        for id in [
            "cplant24.nomax.all",
            "cplant72.nomax.all",
            "cplant24.nomax.fair",
            "cplant24.72max.all",
            "cplant72.72max.fair",
        ] {
            assert_eq!(
                expect(id),
                Composition {
                    order: OrderKind::PromoteStarving,
                    ledger: LedgerKind::HeadOfQueue,
                    rule: RuleKind::Greedy,
                },
                "{id}"
            );
        }
        for (id, dynamic) in [
            ("cons.nomax", false),
            ("cons.72max", false),
            ("consdyn.nomax", true),
            ("consdyn.72max", true),
        ] {
            assert_eq!(
                expect(id),
                Composition {
                    order: OrderKind::Priority,
                    ledger: LedgerKind::Conservative { dynamic },
                    rule: RuleKind::ReservationDue,
                },
                "{id}"
            );
        }
        // The reference points outside the nine.
        assert_eq!(
            PolicySpec::easy().composition(),
            Composition {
                order: OrderKind::PromoteHead,
                ledger: LedgerKind::HeadOfQueue,
                rule: RuleKind::Greedy,
            }
        );
        assert_eq!(
            PolicySpec::fcfs_no_backfill().composition().rule,
            RuleKind::NoBackfill
        );
    }
}
