//! The scheduling policies under study (§5.5), as data.
//!
//! A [`PolicySpec`] is the declarative description of one row of the
//! paper's figures: which backfilling engine, what starvation-queue rules,
//! and whether a maximum-runtime limit applies. [`PolicySpec::sim_config`]
//! lowers it onto the simulator.

use fairsched_sim::engine::{composition_of, Composition};
use fairsched_sim::{EngineKind, HeavyUserRule, RuntimeLimit, SimConfig, StarvationConfig};
use fairsched_workload::time::HOUR;
use std::borrow::Cow;
use std::fmt;

/// The 72-hour maximum runtime §5.1 proposes.
pub const RUNTIME_LIMIT_72H: RuntimeLimit = RuntimeLimit { limit: 72 * HOUR };

/// A policy id that names no known policy. Carries the offending id so
/// callers (`fairsched sweep`/`simulate`) can report it instead of silently
/// dropping the cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyIdError {
    /// The id that failed to parse.
    pub id: String,
}

impl fmt::Display for PolicyIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown policy id {:?}; known ids: the nine \u{a7}5.5 names \
             (cplant24.nomax.all, ..., consdyn.72max), easy.nomax, \
             fcfs.nobackfill, the size-based family \
             (fsp|las|hfsp).(nomax|72max), and rdepth<n>.(nomax|72max)",
            self.id
        )
    }
}

impl std::error::Error for PolicyIdError {}

/// A named scheduling policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySpec {
    /// The policy identifier, e.g. `"cplant24.nomax.all"`. Borrowed for the
    /// fixed table (the paper's nine and the reference points); owned for
    /// parameterized ids like `"rdepth4.nomax"`.
    pub id: Cow<'static, str>,
    /// Backfilling engine.
    pub engine: EngineKind,
    /// Starvation queue (no-guarantee policies only).
    pub starvation: Option<StarvationConfig>,
    /// Maximum-runtime chunking, if any.
    pub runtime_limit: Option<RuntimeLimit>,
}

impl PolicySpec {
    const fn cplant(
        id: &'static str,
        entry_hours: u64,
        heavy_barred: bool,
        limited: bool,
    ) -> PolicySpec {
        PolicySpec {
            id: Cow::Borrowed(id),
            engine: EngineKind::NoGuarantee,
            starvation: Some(StarvationConfig {
                entry_delay: entry_hours * HOUR,
                heavy_rule: if heavy_barred {
                    Some(HeavyUserRule { mean_multiple: 2.0 })
                } else {
                    None
                },
            }),
            runtime_limit: if limited {
                Some(RUNTIME_LIMIT_72H)
            } else {
                None
            },
        }
    }

    const fn conservative(id: &'static str, dynamic: bool, limited: bool) -> PolicySpec {
        PolicySpec {
            id: Cow::Borrowed(id),
            engine: EngineKind::Conservative { dynamic },
            starvation: None,
            runtime_limit: if limited {
                Some(RUNTIME_LIMIT_72H)
            } else {
                None
            },
        }
    }

    /// The original CPlant scheduler: no-guarantee backfilling, fairshare
    /// order, 24 h starvation entry, open to all users, no runtime limit.
    pub const fn baseline() -> PolicySpec {
        PolicySpec::cplant("cplant24.nomax.all", 24, false, false)
    }

    /// All nine policies of §5.5, in the paper's order.
    pub fn paper_policies() -> Vec<PolicySpec> {
        vec![
            PolicySpec::baseline(),
            PolicySpec::cplant("cplant72.nomax.all", 72, false, false),
            PolicySpec::cplant("cplant24.nomax.fair", 24, true, false),
            PolicySpec::cplant("cplant24.72max.all", 24, false, true),
            PolicySpec::cplant("cplant72.72max.fair", 72, true, true),
            PolicySpec::conservative("cons.nomax", false, false),
            PolicySpec::conservative("cons.72max", false, true),
            PolicySpec::conservative("consdyn.nomax", true, false),
            PolicySpec::conservative("consdyn.72max", true, true),
        ]
    }

    /// The "minor changes" subset (§6.1, Figures 8–13): the baseline plus
    /// the four small modifications.
    pub fn minor_policies() -> Vec<PolicySpec> {
        PolicySpec::paper_policies().into_iter().take(5).collect()
    }

    /// The conservative comparison set (§6.2, Figures 16 and 18): the
    /// baseline plus the four conservative variants.
    pub fn conservative_set() -> Vec<PolicySpec> {
        let all = PolicySpec::paper_policies();
        let mut out = vec![all[0].clone()];
        out.extend(all.into_iter().skip(5));
        out
    }

    /// Aggressive (EASY) backfilling with the fairshare order — not one of
    /// the paper's nine, but described in its introduction; used by the
    /// extension benches.
    pub const fn easy() -> PolicySpec {
        PolicySpec {
            id: Cow::Borrowed("easy.nomax"),
            engine: EngineKind::Easy,
            starvation: None,
            runtime_limit: None,
        }
    }

    /// Strict FCFS without backfilling — the §1 strawman (Figure 1): fair
    /// in arrival order but with poor utilization. Reference point for the
    /// claims the paper builds on.
    pub const fn fcfs_no_backfill() -> PolicySpec {
        PolicySpec {
            id: Cow::Borrowed("fcfs.nobackfill"),
            engine: EngineKind::FcfsNoBackfill,
            starvation: None,
            runtime_limit: None,
        }
    }

    const fn size_based(id: &'static str, engine: EngineKind, limited: bool) -> PolicySpec {
        PolicySpec {
            id: Cow::Borrowed(id),
            engine,
            starvation: None,
            runtime_limit: if limited {
                Some(RUNTIME_LIMIT_72H)
            } else {
                None
            },
        }
    }

    /// The size-based policy family (FSP / LAS / HFSP) this study adds as
    /// extension rows: each pairs a size-aware queue order with the EASY
    /// aggressive guard, with and without the 72 h runtime limit.
    pub fn size_based_policies() -> Vec<PolicySpec> {
        vec![
            PolicySpec::size_based("fsp.nomax", EngineKind::Fsp, false),
            PolicySpec::size_based("las.nomax", EngineKind::Las, false),
            PolicySpec::size_based("hfsp.nomax", EngineKind::Hfsp, false),
            PolicySpec::size_based("fsp.72max", EngineKind::Fsp, true),
            PolicySpec::size_based("las.72max", EngineKind::Las, true),
            PolicySpec::size_based("hfsp.72max", EngineKind::Hfsp, true),
        ]
    }

    /// Conservative backfilling truncated to `depth` guaranteed
    /// reservations — the Depth(n) tunable between EASY (`depth == 1`) and
    /// full conservative. Its id is the parameterized `rdepth<n>.<limit>`
    /// form, e.g. `rdepth4.nomax`.
    pub fn reservation_depth(depth: u32, limited: bool) -> PolicySpec {
        let suffix = if limited { "72max" } else { "nomax" };
        PolicySpec {
            id: Cow::Owned(format!("rdepth{depth}.{suffix}")),
            engine: EngineKind::ReservationDepth(depth),
            starvation: None,
            runtime_limit: if limited {
                Some(RUNTIME_LIMIT_72H)
            } else {
                None
            },
        }
    }

    /// Parses a policy id: the nine of §5.5, the `easy.nomax` and
    /// `fcfs.nobackfill` reference points, the size-based family
    /// (`fsp|las|hfsp`)`.`(`nomax|72max`), and the parameterized
    /// `rdepth<n>.(nomax|72max)` depth tunable. Unknown ids produce a
    /// typed [`PolicyIdError`] carrying the offending id, so callers can
    /// report the cell instead of silently dropping it.
    pub fn parse(id: &str) -> Result<PolicySpec, PolicyIdError> {
        match id {
            "easy.nomax" => return Ok(PolicySpec::easy()),
            "fcfs.nobackfill" => return Ok(PolicySpec::fcfs_no_backfill()),
            _ => {}
        }
        if let Some(p) = PolicySpec::paper_policies()
            .into_iter()
            .chain(PolicySpec::size_based_policies())
            .find(|p| p.id == id)
        {
            return Ok(p);
        }
        if let Some(rest) = id.strip_prefix("rdepth") {
            let (depth, limited) = match rest.split_once('.') {
                Some((d, "nomax")) => (d, false),
                Some((d, "72max")) => (d, true),
                _ => return Err(PolicyIdError { id: id.to_string() }),
            };
            // Reject non-canonical spellings like `rdepth04`: the id must
            // round-trip, or journal fingerprints would alias.
            if let Ok(n) = depth.parse::<u32>() {
                if depth == n.to_string() {
                    return Ok(PolicySpec::reservation_depth(n, limited));
                }
            }
        }
        Err(PolicyIdError { id: id.to_string() })
    }

    /// Looks a policy up by id; `None` when unknown. [`PolicySpec::parse`]
    /// is the same lookup with a typed error instead.
    pub fn by_id(id: &str) -> Option<PolicySpec> {
        PolicySpec::parse(id).ok()
    }

    /// The declarative strategy composition this policy's engine resolves
    /// to: which queue-order strategy, reservation ledger, and backfill
    /// rule make it up. Every policy — the paper's nine included — is a row
    /// of this table; the starvation queue and runtime limit are simulator
    /// configuration layered on top, not part of the engine composition.
    pub fn composition(&self) -> Composition {
        composition_of(self.engine)
    }

    /// Lowers this policy onto a simulator configuration for a
    /// `nodes`-wide machine. Everything not policy-specific (fairshare
    /// decay, queue order, kill rule) keeps the CPlant defaults.
    pub fn sim_config(&self, nodes: u32) -> SimConfig {
        SimConfig {
            nodes,
            engine: self.engine,
            starvation: self.starvation,
            runtime_limit: self.runtime_limit,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_sim::QueueOrder;

    #[test]
    fn there_are_exactly_nine_paper_policies_with_the_published_names() {
        let all = PolicySpec::paper_policies();
        let names: Vec<&str> = all.iter().map(|p| p.id.as_ref()).collect();
        assert_eq!(
            names,
            vec![
                "cplant24.nomax.all",
                "cplant72.nomax.all",
                "cplant24.nomax.fair",
                "cplant24.72max.all",
                "cplant72.72max.fair",
                "cons.nomax",
                "cons.72max",
                "consdyn.nomax",
                "consdyn.72max",
            ]
        );
    }

    #[test]
    fn policy_knobs_match_their_names() {
        let p = PolicySpec::by_id("cplant72.72max.fair").unwrap();
        let s = p.starvation.unwrap();
        assert_eq!(s.entry_delay, 72 * HOUR);
        assert!(s.heavy_rule.is_some());
        assert_eq!(p.runtime_limit, Some(RUNTIME_LIMIT_72H));
        assert_eq!(p.engine, EngineKind::NoGuarantee);

        let c = PolicySpec::by_id("consdyn.nomax").unwrap();
        assert_eq!(c.engine, EngineKind::Conservative { dynamic: true });
        assert!(c.starvation.is_none());
        assert!(c.runtime_limit.is_none());

        let c72 = PolicySpec::by_id("cons.72max").unwrap();
        assert_eq!(c72.engine, EngineKind::Conservative { dynamic: false });
        assert_eq!(c72.runtime_limit, Some(RUNTIME_LIMIT_72H));
    }

    #[test]
    fn subsets_match_the_figures() {
        let minor_all = PolicySpec::minor_policies();
        let minor: Vec<&str> = minor_all.iter().map(|p| p.id.as_ref()).collect();
        assert_eq!(minor.len(), 5);
        assert!(minor.iter().all(|n| n.starts_with("cplant")));

        let cons_all = PolicySpec::conservative_set();
        let cons: Vec<&str> = cons_all.iter().map(|p| p.id.as_ref()).collect();
        assert_eq!(
            cons,
            vec![
                "cplant24.nomax.all",
                "cons.nomax",
                "cons.72max",
                "consdyn.nomax",
                "consdyn.72max"
            ]
        );
    }

    #[test]
    fn sim_config_keeps_cplant_defaults() {
        let cfg = PolicySpec::baseline().sim_config(512);
        assert_eq!(cfg.nodes, 512);
        assert_eq!(cfg.order, QueueOrder::Fairshare);
        assert_eq!(cfg.engine, EngineKind::NoGuarantee);
    }

    #[test]
    fn unknown_ids_return_none() {
        assert!(PolicySpec::by_id("cplant48.nomax.all").is_none());
    }

    #[test]
    fn parse_reports_the_offending_id_in_a_typed_error() {
        let err = PolicySpec::parse("cplant48.nomax.all").unwrap_err();
        assert_eq!(err.id, "cplant48.nomax.all");
        let msg = err.to_string();
        assert!(msg.contains("cplant48.nomax.all"), "{msg}");
        assert!(msg.contains("rdepth<n>"), "{msg}");
    }

    #[test]
    fn size_based_ids_resolve_to_their_engines() {
        for (id, engine, limited) in [
            ("fsp.nomax", EngineKind::Fsp, false),
            ("las.nomax", EngineKind::Las, false),
            ("hfsp.nomax", EngineKind::Hfsp, false),
            ("fsp.72max", EngineKind::Fsp, true),
            ("las.72max", EngineKind::Las, true),
            ("hfsp.72max", EngineKind::Hfsp, true),
        ] {
            let p = PolicySpec::by_id(id).unwrap_or_else(|| panic!("{id}"));
            assert_eq!(p.id, id);
            assert_eq!(p.engine, engine, "{id}");
            assert!(p.starvation.is_none(), "{id}");
            assert_eq!(
                p.runtime_limit,
                limited.then_some(RUNTIME_LIMIT_72H),
                "{id}"
            );
        }
    }

    #[test]
    fn rdepth_ids_round_trip_through_parse() {
        let p = PolicySpec::parse("rdepth4.nomax").unwrap();
        assert_eq!(p.engine, EngineKind::ReservationDepth(4));
        assert_eq!(p.id, "rdepth4.nomax");
        assert!(p.runtime_limit.is_none());

        let p = PolicySpec::parse("rdepth2.72max").unwrap();
        assert_eq!(p.engine, EngineKind::ReservationDepth(2));
        assert_eq!(p.runtime_limit, Some(RUNTIME_LIMIT_72H));
        assert_eq!(p, PolicySpec::reservation_depth(2, true));

        // Non-canonical or malformed depth ids stay errors: they would not
        // round-trip and would alias journal fingerprints.
        for bad in ["rdepth04.nomax", "rdepth.nomax", "rdepth4", "rdepth4.max"] {
            assert_eq!(
                PolicySpec::parse(bad).unwrap_err().id,
                bad,
                "{bad} should not parse"
            );
        }
    }

    #[test]
    fn nine_policies_decompose_into_the_documented_strategy_table() {
        use fairsched_sim::engine::{LedgerKind, OrderKind, RuleKind};
        // The nine paper policies collapse onto three engine compositions:
        // the five CPlant rows share the starvation-promotion greedy walk
        // (their knobs live in SimConfig, not the engine), and the four
        // conservative rows split only on the static/dynamic ledger.
        let expect = |id: &str| PolicySpec::by_id(id).unwrap().composition();
        for id in [
            "cplant24.nomax.all",
            "cplant72.nomax.all",
            "cplant24.nomax.fair",
            "cplant24.72max.all",
            "cplant72.72max.fair",
        ] {
            assert_eq!(
                expect(id),
                Composition {
                    order: OrderKind::PromoteStarving,
                    ledger: LedgerKind::HeadOfQueue,
                    rule: RuleKind::Greedy,
                },
                "{id}"
            );
        }
        for (id, dynamic) in [
            ("cons.nomax", false),
            ("cons.72max", false),
            ("consdyn.nomax", true),
            ("consdyn.72max", true),
        ] {
            assert_eq!(
                expect(id),
                Composition {
                    order: OrderKind::Priority,
                    ledger: LedgerKind::Conservative { dynamic },
                    rule: RuleKind::ReservationDue,
                },
                "{id}"
            );
        }
        // The reference points outside the nine.
        assert_eq!(
            PolicySpec::easy().composition(),
            Composition {
                order: OrderKind::PromoteHead,
                ledger: LedgerKind::HeadOfQueue,
                rule: RuleKind::Greedy,
            }
        );
        assert_eq!(
            PolicySpec::fcfs_no_backfill().composition().rule,
            RuleKind::NoBackfill
        );
    }
}
