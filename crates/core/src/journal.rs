//! Shared framing for durable, checksummed JSONL journals.
//!
//! Two subsystems persist append-only journals: the sweep harness (one
//! row per finished grid cell, `sweep::journal`) and the online service
//! (one row per accepted submission or clock grant,
//! `fairsched_served::journal`). Both need the same wire discipline, so
//! the machinery lives here once:
//!
//! * **Sealed lines.** Every line is a flat JSON object whose final field
//!   is `"crc"`, the FNV-1a checksum of everything before it. A torn
//!   final line (the process was SIGKILLed mid-write) or a corrupted line
//!   fails [`unseal_line`] or the checksum comparison and is *skipped* on
//!   replay — never trusted, never panicked over.
//! * **Schema versions.** Every body carries `"v":N`; a line from an
//!   unknown (newer) schema degrades to a skip with a warning, not a
//!   crash.
//! * **Hand-rolled JSON.** The workspace's serde is a deliberate no-op
//!   stub, so writers format fields by hand and readers pull them back
//!   out with the [`json_u64`]-family helpers. Floats round-trip through
//!   Rust's shortest-representation `Display`, which keeps replayed rows
//!   bit-identical to the run that wrote them.
//!
//! [`LineWriter`] owns the file half: append-only writes of sealed
//! lines with explicit [`LineWriter::flush`] (kernel handoff — a SIGKILL
//! then loses nothing) and [`LineWriter::sync`] (fsync — a power cut
//! then loses nothing) so each consumer picks its own durability batch
//! size. [`replay_lines`] owns the read half: framing, checksum, and
//! version checks per line, with every skip warned and counted.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// FNV-1a (64-bit): the journal checksum and the sweep-plan fingerprint.
/// Not cryptographic — it guards against truncation and bit rot, not
/// tampering.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Escapes a string for embedding in a journal line's JSON body.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape`].
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

/// Finds `"key":` at top level of the (flat) object and returns the raw
/// value text that follows, up to the next `,"` or closing `}`.
pub fn raw_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    if let Some(stripped) = rest.strip_prefix('"') {
        // String value: scan to the closing unescaped quote.
        let mut esc = false;
        for (i, c) in stripped.char_indices() {
            match c {
                '\\' if !esc => esc = true,
                '"' if !esc => return Some(&stripped[..i]),
                _ => esc = false,
            }
        }
        None
    } else if let Some(stripped) = rest.strip_prefix('[') {
        stripped.find(']').map(|end| &stripped[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// A `u64` field of a journal body.
pub fn json_u64(line: &str, key: &str) -> Option<u64> {
    raw_value(line, key)?.parse().ok()
}

/// A `u32` field of a journal body.
pub fn json_u32(line: &str, key: &str) -> Option<u32> {
    raw_value(line, key)?.parse().ok()
}

/// An `f64` field of a journal body (shortest-round-trip exact).
pub fn json_f64(line: &str, key: &str) -> Option<f64> {
    raw_value(line, key)?.parse().ok()
}

/// A string field of a journal body, unescaped.
pub fn json_str(line: &str, key: &str) -> Option<String> {
    raw_value(line, key).map(unescape)
}

/// A fixed-width `f64` array field of a journal body.
pub fn json_f64_array<const N: usize>(line: &str, key: &str) -> Option<[f64; N]> {
    let raw = raw_value(line, key)?;
    let mut out = [0.0; N];
    let mut count = 0;
    for (i, part) in raw.split(',').enumerate() {
        if i >= N {
            return None;
        }
        out[i] = part.trim().parse().ok()?;
        count = i + 1;
    }
    (count == N).then_some(out)
}

/// Appends the checksum and newline: `line = body + ',"crc":N}' + '\n'`
/// where `N = fnv1a(body)`. `body` is an *unclosed* flat JSON object —
/// `{"v":1,...` with no trailing `}`.
pub fn seal_line(body: &str) -> String {
    format!("{body},\"crc\":{}}}\n", fnv1a(body.as_bytes()))
}

/// Splits a sealed line back into `(body, crc)`; `None` when the framing
/// is absent (torn write).
pub fn unseal_line(line: &str) -> Option<(&str, u64)> {
    let line = line.strip_suffix('}')?;
    let at = line.rfind(",\"crc\":")?;
    let crc: u64 = line[at + 7..].parse().ok()?;
    Some((&line[..at], crc))
}

/// The append side of a journal file: sealed lines into a buffered
/// writer, with flush (SIGKILL durability) and fsync (power-cut
/// durability) under the caller's control so each consumer chooses its
/// own batching policy.
pub struct LineWriter {
    out: BufWriter<File>,
}

impl LineWriter {
    /// Creates (truncating) `path`.
    pub fn create(path: &Path) -> std::io::Result<LineWriter> {
        Ok(LineWriter {
            out: BufWriter::new(File::create(path)?),
        })
    }

    /// Opens `path` for appending (resume / recovery: the header is
    /// already there).
    pub fn append(path: &Path) -> std::io::Result<LineWriter> {
        Ok(LineWriter {
            out: BufWriter::new(OpenOptions::new().append(true).open(path)?),
        })
    }

    /// Seals `body` and writes the line into the buffer (no flush).
    /// Returns the number of bytes written.
    pub fn write_sealed(&mut self, body: &str) -> std::io::Result<u64> {
        let line = seal_line(body);
        self.out.write_all(line.as_bytes())?;
        Ok(line.len() as u64)
    }

    /// Hands buffered lines to the kernel: a SIGKILLed process then loses
    /// nothing already written.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }

    /// Flushes and fsyncs: a power cut then loses nothing already
    /// written.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.out.flush()?;
        self.out.get_ref().sync_data()
    }
}

impl Drop for LineWriter {
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

/// Replays `path` line by line, verifying framing, checksum, and schema
/// version, and hands each *verified body* to `on_line`. Every failed
/// line — torn, corrupt, unknown version, or rejected by `on_line` with
/// a reason — is skipped with a warning carrying `skip_consequence`
/// (e.g. `"the affected cell will re-run"`), never panicked over.
/// Returns the number of skipped lines. A missing file replays as empty.
pub fn replay_lines(
    path: &Path,
    version: u64,
    skip_consequence: &str,
    mut on_line: impl FnMut(&str) -> Result<(), String>,
) -> std::io::Result<usize> {
    let mut text = String::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_string(&mut text)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    }
    let mut skipped = 0;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let why = match unseal_line(line) {
            None => "torn or unframed line".to_string(),
            Some((body, crc)) if fnv1a(body.as_bytes()) != crc => "checksum mismatch".to_string(),
            Some((body, _)) if json_u64(body, "v") != Some(version) => {
                "unknown schema version".to_string()
            }
            Some((body, _)) => match on_line(body) {
                Ok(()) => continue,
                Err(why) => why,
            },
        };
        fairsched_obs::log::warn(format!(
            "journal {}: skipping line {} ({why}); {skip_consequence}",
            path.display(),
            lineno + 1,
        ));
        skipped += 1;
    }
    Ok(skipped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("fairsched-core-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn sealed_lines_round_trip_and_verify() {
        let body = "{\"v\":1,\"kind\":\"x\",\"s\":\"a\\\"b\"";
        let line = seal_line(body);
        let (back, crc) = unseal_line(line.trim_end()).unwrap();
        assert_eq!(back, body);
        assert_eq!(crc, fnv1a(body.as_bytes()));
    }

    #[test]
    fn torn_corrupt_and_future_lines_are_skipped_with_warnings() {
        let path = tmp("mixed.jsonl");
        let mut w = LineWriter::create(&path).unwrap();
        w.write_sealed("{\"v\":1,\"n\":1").unwrap();
        w.write_sealed("{\"v\":1,\"n\":2").unwrap();
        w.write_sealed("{\"v\":99,\"n\":3").unwrap();
        w.sync().unwrap();
        drop(w);
        // Tear the tail and corrupt line 2.
        let text = std::fs::read_to_string(&path).unwrap();
        let corrupted = text.replacen("\"n\":2", "\"n\":5", 1) + "{\"v\":1,\"n\":4,\"crc";
        std::fs::write(&path, corrupted).unwrap();
        let mut seen = Vec::new();
        let mut skipped = 0;
        let warnings = fairsched_obs::log::capture(|| {
            skipped = replay_lines(&path, 1, "row ignored", |body| {
                seen.push(json_u64(body, "n").unwrap());
                Ok(())
            })
            .unwrap();
        });
        assert_eq!(seen, vec![1]);
        assert_eq!(skipped, 3);
        assert!(warnings.iter().any(|(_, m)| m.contains("checksum")));
        assert!(warnings.iter().any(|(_, m)| m.contains("schema version")));
        assert!(warnings.iter().any(|(_, m)| m.contains("torn")));
    }

    #[test]
    fn missing_files_replay_as_empty() {
        let skipped = replay_lines(&tmp("never-written.jsonl"), 1, "ignored", |_| {
            panic!("no lines expected")
        })
        .unwrap();
        assert_eq!(skipped, 0);
    }

    #[test]
    fn consumer_rejections_count_as_skips() {
        let path = tmp("rejected.jsonl");
        let mut w = LineWriter::create(&path).unwrap();
        w.write_sealed("{\"v\":1,\"n\":1").unwrap();
        w.sync().unwrap();
        drop(w);
        let mut skipped = 0;
        let warnings = fairsched_obs::log::capture(|| {
            skipped = replay_lines(&path, 1, "ignored", |_| Err("not my kind".into())).unwrap();
        });
        assert_eq!(skipped, 1);
        assert!(warnings.iter().any(|(_, m)| m.contains("not my kind")));
    }
}
