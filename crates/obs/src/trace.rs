//! Structured decision traces.
//!
//! A [`TraceRecord`] is one scheduling decision (or one state sample),
//! emitted at the moment it is made: who started and *why*, whose
//! reservation moved, who got promoted out of starvation, which crashed
//! submission was requeued. A [`TraceSink`] receives them; the stock sink
//! is [`DecisionTracer`], a bounded ring buffer that keeps the most recent
//! records and counts what it had to drop.
//!
//! Emission sites inside the simulator hold shared (`&`) context, so the
//! sink travels as a [`SharedSink`] — a `Mutex` around the caller's
//! `&mut dyn TraceSink`. The simulator is single-threaded per run, so the
//! lock is uncontended by construction; it exists so a simulator state
//! (with its trace handle) is `Send` and can be handed to worker threads
//! by the warm-start fan-out and the sweep watchdog.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::Mutex;

use fairsched_workload::job::JobId;
use fairsched_workload::time::Time;

/// Why a job started when it did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StartCause {
    /// Started in queue-priority order: nothing runnable was ahead of it.
    Fcfs,
    /// Started out of order, jumping the listed higher-priority jobs that
    /// were left waiting (in queue-priority order).
    Backfilled { bypassed: Vec<JobId> },
    /// Started because a reservation (conservative/depth slot, or the
    /// guaranteed head under aggressive backfilling) came due.
    Reservation,
    /// Started as the starvation guard: the no-guarantee engine promoted
    /// it to a protected head after it starved past the threshold.
    StarvationGuard,
}

impl StartCause {
    fn tag(&self) -> &'static str {
        match self {
            StartCause::Fcfs => "fcfs",
            StartCause::Backfilled { .. } => "backfilled",
            StartCause::Reservation => "reservation",
            StartCause::StarvationGuard => "starvation_guard",
        }
    }
}

/// One scheduling decision or state sample, stamped with simulation time.
///
/// Field conventions: `at` is the simulation time of the decision, `job`
/// is the submission id it concerns (chunked/requeued submissions have
/// their own ids; `origin` names the original trace job where relevant).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A job was dispatched onto nodes.
    JobStarted {
        at: Time,
        job: JobId,
        nodes: u32,
        cause: StartCause,
    },
    /// A conservative-family reservation was created for `job`.
    ReservationMade { at: Time, job: JobId, start: Time },
    /// An existing reservation for `job` moved from `from` to `to` —
    /// backward under §5.3 improvement, either way under §5.4 dynamic
    /// rebuilds (forward moves are the "slippage" the paper blames for
    /// unfairness).
    ReservationShifted {
        at: Time,
        job: JobId,
        from: Time,
        to: Time,
    },
    /// The starvation threshold promoted `job` to guarded head after it
    /// waited `waited` seconds.
    StarvationPromoted { at: Time, job: JobId, waited: Time },
    /// Submission `job` (of trace job `origin`) died to a fault and was
    /// requeued as new submission `retry`, losing `lost` seconds of
    /// completed work.
    FaultRequeued {
        at: Time,
        origin: JobId,
        job: JobId,
        retry: JobId,
        lost: Time,
    },
    /// A node went down at `at`; it comes back at `until`.
    NodeFailed { at: Time, node: u64, until: Time },
    /// A size-based order strategy (FSP/LAS/HFSP) ranked `job` at the head
    /// of its virtual schedule ahead of `displaced`, the job that arrived
    /// first — a virtual-time inversion. `job_key`/`displaced_key` are the
    /// strategy's sort keys (virtual remaining size over fair-share weight,
    /// or per-user attained service). Emitted once per distinct
    /// (job, displaced) pair so `explain` can attribute a job's policy wait
    /// to the virtual schedule overtaking it.
    VirtualInversion {
        at: Time,
        job: JobId,
        displaced: JobId,
        job_key: f64,
        displaced_key: f64,
    },
    /// Queue/machine state after an event batch settled: queue `depth`
    /// (jobs) demanding `queued_nodes` nodes in total, `free_nodes` idle,
    /// `running` jobs placed, instantaneous utilization `util`.
    QueueSample {
        at: Time,
        depth: usize,
        queued_nodes: u64,
        free_nodes: u32,
        running: usize,
        util: f64,
    },
}

impl TraceRecord {
    /// Simulation time the record was emitted at.
    pub fn at(&self) -> Time {
        match *self {
            TraceRecord::JobStarted { at, .. }
            | TraceRecord::ReservationMade { at, .. }
            | TraceRecord::ReservationShifted { at, .. }
            | TraceRecord::StarvationPromoted { at, .. }
            | TraceRecord::FaultRequeued { at, .. }
            | TraceRecord::NodeFailed { at, .. }
            | TraceRecord::VirtualInversion { at, .. }
            | TraceRecord::QueueSample { at, .. } => at,
        }
    }

    /// Renders the record as one line of JSON (no trailing newline).
    ///
    /// Hand-rolled because the vendored serde is a no-op stub; every field
    /// is numeric or a fixed tag, so the writer needs no escaping.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        match self {
            TraceRecord::JobStarted {
                at,
                job,
                nodes,
                cause,
            } => {
                write!(
                    s,
                    r#"{{"type":"job_started","at":{at},"job":{},"nodes":{nodes},"cause":"{}""#,
                    job.0,
                    cause.tag()
                )
                .unwrap();
                if let StartCause::Backfilled { bypassed } = cause {
                    s.push_str(r#","bypassed":["#);
                    for (i, id) in bypassed.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        write!(s, "{}", id.0).unwrap();
                    }
                    s.push(']');
                }
                s.push('}');
            }
            TraceRecord::ReservationMade { at, job, start } => {
                write!(
                    s,
                    r#"{{"type":"reservation_made","at":{at},"job":{},"start":{start}}}"#,
                    job.0
                )
                .unwrap();
            }
            TraceRecord::ReservationShifted { at, job, from, to } => {
                write!(
                    s,
                    r#"{{"type":"reservation_shifted","at":{at},"job":{},"from":{from},"to":{to}}}"#,
                    job.0
                )
                .unwrap();
            }
            TraceRecord::StarvationPromoted { at, job, waited } => {
                write!(
                    s,
                    r#"{{"type":"starvation_promoted","at":{at},"job":{},"waited":{waited}}}"#,
                    job.0
                )
                .unwrap();
            }
            TraceRecord::FaultRequeued {
                at,
                origin,
                job,
                retry,
                lost,
            } => {
                write!(
                    s,
                    r#"{{"type":"fault_requeued","at":{at},"origin":{},"job":{},"retry":{},"lost":{lost}}}"#,
                    origin.0, job.0, retry.0
                )
                .unwrap();
            }
            TraceRecord::NodeFailed { at, node, until } => {
                write!(
                    s,
                    r#"{{"type":"node_failed","at":{at},"node":{node},"until":{until}}}"#
                )
                .unwrap();
            }
            TraceRecord::VirtualInversion {
                at,
                job,
                displaced,
                job_key,
                displaced_key,
            } => {
                write!(
                    s,
                    r#"{{"type":"virtual_inversion","at":{at},"job":{},"displaced":{},"job_key":{job_key:.3},"displaced_key":{displaced_key:.3}}}"#,
                    job.0, displaced.0
                )
                .unwrap();
            }
            TraceRecord::QueueSample {
                at,
                depth,
                queued_nodes,
                free_nodes,
                running,
                util,
            } => {
                write!(
                    s,
                    r#"{{"type":"queue_sample","at":{at},"depth":{depth},"queued_nodes":{queued_nodes},"free_nodes":{free_nodes},"running":{running},"util":{util:.4}}}"#
                )
                .unwrap();
            }
        }
        s
    }
}

/// Receives trace records as the simulation makes decisions.
///
/// Implementations must not observe or influence the simulation in any
/// other way: the zero-interference proptests hold for *any* sink because
/// the simulator never reads anything back from it. Sinks are `Send` so a
/// traced simulator state can cross threads (parallel fan-outs, watchdog
/// cancellation); emission itself still happens on one thread at a time.
pub trait TraceSink: Send {
    /// Accept one record. Called at most a few times per simulation event.
    fn record(&mut self, rec: TraceRecord);
}

/// Collect everything, unbounded. Handy in tests.
impl TraceSink for Vec<TraceRecord> {
    fn record(&mut self, rec: TraceRecord) {
        self.push(rec);
    }
}

/// Bounded ring buffer of the most recent trace records.
///
/// When full, the oldest record is dropped and counted; `len + dropped`
/// is the total number of records ever offered. [`DecisionTracer::unbounded`]
/// keeps everything — use it when a later replay (JSONL export,
/// `fairsched explain`) needs the full history.
#[derive(Debug, Clone, Default)]
pub struct DecisionTracer {
    buf: VecDeque<TraceRecord>,
    cap: usize,
    dropped: u64,
}

impl DecisionTracer {
    /// A tracer keeping at most `cap` records (the most recent ones).
    pub fn new(cap: usize) -> Self {
        DecisionTracer {
            buf: VecDeque::new(),
            cap: cap.max(1),
            dropped: 0,
        }
    }

    /// A tracer that never evicts.
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Consumes the tracer, yielding held records oldest first.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.buf.into()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records evicted to honor the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Writes every held record as JSONL to `w`.
    pub fn write_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        for rec in &self.buf {
            writeln!(w, "{}", rec.to_jsonl())?;
        }
        Ok(())
    }
}

impl TraceSink for DecisionTracer {
    fn record(&mut self, rec: TraceRecord) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }
}

/// Shared-reference emission interface, for contexts that only hold `&`.
///
/// The simulator hands engines a shared context, so the sink travels as
/// `Option<&dyn TraceHandle>`: one pointer to test per emission site, and
/// the lifetime of the underlying `&mut` sink stays erased (trait objects
/// are covariant in their lifetime bound, so the handle threads through
/// borrow-stacked contexts without infecting their lifetimes). Handles are
/// `Sync` so a simulator state holding one is `Send`.
pub trait TraceHandle: Sync {
    /// Accepts one record.
    fn emit(&self, rec: TraceRecord);
}

/// A [`TraceSink`] shareable through `&`-only contexts.
///
/// The engine context is handed to engines by shared reference, so the
/// sink inside it needs interior mutability. The simulation is
/// single-threaded per run and never emits while already emitting, so the
/// `Mutex` is uncontended; it (rather than a `RefCell`) makes the handle
/// `Sync`, which is what lets a simulator state cross threads.
pub struct SharedSink<'a> {
    inner: Mutex<&'a mut dyn TraceSink>,
}

impl<'a> SharedSink<'a> {
    /// Wraps a caller-owned sink for the duration of one simulation.
    pub fn new(sink: &'a mut dyn TraceSink) -> Self {
        SharedSink {
            inner: Mutex::new(sink),
        }
    }

    /// Forwards one record to the wrapped sink.
    pub fn record(&self, rec: TraceRecord) {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .record(rec);
    }
}

impl TraceHandle for SharedSink<'_> {
    fn emit(&self, rec: TraceRecord) {
        self.record(rec);
    }
}

impl std::fmt::Debug for SharedSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SharedSink")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn started(at: Time, job: u32) -> TraceRecord {
        TraceRecord::JobStarted {
            at,
            job: JobId(job),
            nodes: 4,
            cause: StartCause::Fcfs,
        }
    }

    #[test]
    fn ring_buffer_keeps_the_most_recent_records() {
        let mut t = DecisionTracer::new(3);
        for i in 0..5 {
            t.record(started(i, i as u32));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let ats: Vec<Time> = t.records().map(|r| r.at()).collect();
        assert_eq!(ats, vec![2, 3, 4]);
    }

    #[test]
    fn unbounded_tracer_never_drops() {
        let mut t = DecisionTracer::unbounded();
        for i in 0..10_000 {
            t.record(started(i, 0));
        }
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn jsonl_lines_are_valid_single_objects() {
        let recs = vec![
            TraceRecord::JobStarted {
                at: 10,
                job: JobId(7),
                nodes: 16,
                cause: StartCause::Backfilled {
                    bypassed: vec![JobId(3), JobId(5)],
                },
            },
            TraceRecord::ReservationShifted {
                at: 20,
                job: JobId(3),
                from: 100,
                to: 180,
            },
            TraceRecord::QueueSample {
                at: 30,
                depth: 4,
                queued_nodes: 96,
                free_nodes: 32,
                running: 2,
                util: 0.5,
            },
        ];
        for rec in &recs {
            let line = rec.to_jsonl();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'));
            assert!(line.contains(r#""type":""#));
        }
        assert!(recs[0].to_jsonl().contains(r#""bypassed":[3,5]"#));
        assert!(recs[1].to_jsonl().contains(r#""from":100,"to":180"#));
    }

    #[test]
    fn shared_sink_forwards_through_shared_refs() {
        let mut tracer = DecisionTracer::unbounded();
        {
            let shared = SharedSink::new(&mut tracer);
            let shared_ref = &shared;
            shared_ref.record(started(1, 1));
            shared_ref.record(started(2, 2));
        }
        assert_eq!(tracer.len(), 2);
    }
}
