//! Runtime counters and profiling.
//!
//! The simulator's hot paths carry a handful of instrumentation points
//! (scheduler passes, `earliest_start` probes, backfill attempts,
//! warm-start prefix reuse). Each point costs one relaxed atomic load
//! while profiling is off; inside a [`ProfileScope`] it additionally pays
//! a relaxed increment (and, for pass timing, two monotonic clock reads).
//!
//! Counters are **process-wide**: profiling a parallel sweep attributes
//! every worker's activity to one report. Profile one run at a time when
//! per-policy numbers matter — `fairsched profile` and
//! `RunOptions { profile: true, .. }` both do.
//!
//! Timing never feeds back into the simulation: schedules stay a pure
//! function of (trace, config, seed) whether or not a scope is active.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

const BUCKETS: usize = 64;

/// A mergeable histogram over `u64` samples with log2-scaled buckets.
///
/// Bucket `0` holds zeros; bucket `i >= 1` holds samples in
/// `[2^(i-1), 2^i)`. Sixty-four buckets cover the whole `u64` range, so
/// recording never saturates. The exact sum is tracked alongside, so the
/// mean is exact even though quantiles are bucket-resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (BUCKETS as u32 - value.leading_zeros()).min(BUCKETS as u32 - 1) as usize
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The count in bucket `i` (0 for out-of-range indices).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// The highest occupied bucket index (0 when empty).
    pub fn highest_bucket(&self) -> usize {
        self.buckets.iter().rposition(|&n| n > 0).unwrap_or(0)
    }

    /// Adds `n` samples directly into bucket `i`, bumping the count but
    /// not the sum (callers reconstructing a histogram from bucketized
    /// data set the sum separately via [`Histogram::set_sum`]).
    pub fn add_bucket(&mut self, i: usize, n: u64) {
        self.buckets[i.min(BUCKETS - 1)] += n;
        self.count += n;
    }

    /// Overwrites the exact sum (pairs with [`Histogram::add_bucket`]).
    pub fn set_sum(&mut self, sum: u64) {
        self.sum = sum;
    }

    /// Lower bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`). Bucket resolution: the true value is within 2x.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << (i - 1) };
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// The `q`-quantile with linear interpolation inside the log2 bucket
    /// containing the rank. Smoother than [`Histogram::quantile`] for
    /// rendering p50/p95/p99 — still bucket-resolution underneath, but
    /// monotone in `q` and free of the power-of-two staircase.
    pub fn quantile_interpolated(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut below = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if below + n >= rank {
                if i == 0 {
                    return 0.0;
                }
                let lower = (1u64 << (i - 1)) as f64;
                let upper = if i == BUCKETS - 1 {
                    lower * 2.0
                } else {
                    (1u64 << i) as f64
                };
                let into = (rank - below) as f64;
                return lower + (upper - lower) * (into / (n.max(1)) as f64);
            }
            below += n;
        }
        (1u64 << (BUCKETS - 1)) as f64
    }

    fn saturating_sub(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (i, (a, b)) in self.buckets.iter().zip(&earlier.buckets).enumerate() {
            out.buckets[i] = a.saturating_sub(*b);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }
}

// Process-wide instrumentation state. `ENABLED_DEPTH` counts live
// `ProfileScope`s so nested/overlapping scopes compose.
static ENABLED_DEPTH: AtomicU64 = AtomicU64::new(0);
static SCHED_PASSES: AtomicU64 = AtomicU64::new(0);
static EARLIEST_START_CALLS: AtomicU64 = AtomicU64::new(0);
static BACKFILL_ATTEMPTS: AtomicU64 = AtomicU64::new(0);
static BACKFILL_SUCCESSES: AtomicU64 = AtomicU64::new(0);
static WARM_START_HITS: AtomicU64 = AtomicU64::new(0);
static WARM_START_MISSES: AtomicU64 = AtomicU64::new(0);
static PASS_NS_SUM: AtomicU64 = AtomicU64::new(0);
static PASS_NS_BUCKETS: [AtomicU64; BUCKETS] = [const { AtomicU64::new(0) }; BUCKETS];
// Sweep-harness counters. Unlike the profiling counters above these are
// *operational* — they move unconditionally, not only inside a
// `ProfileScope`: a crash-safe sweep wants its progress visible whether or
// not anyone asked for a profile.
static SWEEP_CELLS_OK: AtomicU64 = AtomicU64::new(0);
static SWEEP_CELLS_RETRIED: AtomicU64 = AtomicU64::new(0);
static SWEEP_CELLS_TIMED_OUT: AtomicU64 = AtomicU64::new(0);
static SWEEP_CELLS_POISONED: AtomicU64 = AtomicU64::new(0);
static SWEEP_JOURNAL_BYTES: AtomicU64 = AtomicU64::new(0);

/// True while at least one [`ProfileScope`] is alive. Instrumented call
/// sites check this first so profiling-off costs a single relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED_DEPTH.load(Relaxed) > 0
}

/// RAII switch for the process-wide counters.
///
/// Counters accumulate only while a scope is alive; snapshot deltas
/// ([`CounterSnapshot::since`]) isolate one region of interest.
#[derive(Debug)]
pub struct ProfileScope(());

impl ProfileScope {
    /// Enables instrumentation until the returned guard drops.
    pub fn enter() -> ProfileScope {
        ENABLED_DEPTH.fetch_add(1, Relaxed);
        ProfileScope(())
    }
}

impl Drop for ProfileScope {
    fn drop(&mut self) {
        ENABLED_DEPTH.fetch_sub(1, Relaxed);
    }
}

/// Counts one `earliest_start` probe (the conservative-family hot call).
#[inline]
pub fn record_earliest_start() {
    if enabled() {
        EARLIEST_START_CALLS.fetch_add(1, Relaxed);
    }
}

/// Counts one backfill walk: `attempts` queued candidates were examined,
/// `successes` of them started.
#[inline]
pub fn record_backfill(attempts: u64, successes: u64) {
    if enabled() {
        BACKFILL_ATTEMPTS.fetch_add(attempts, Relaxed);
        BACKFILL_SUCCESSES.fetch_add(successes, Relaxed);
    }
}

/// Counts one warm-start prefix lookup: `hit` when the master simulator
/// could be reused, false when it fell back to a cold replay.
#[inline]
pub fn record_warm_start(hit: bool) {
    if enabled() {
        if hit {
            WARM_START_HITS.fetch_add(1, Relaxed);
        } else {
            WARM_START_MISSES.fetch_add(1, Relaxed);
        }
    }
}

/// Counts one sweep cell reaching a terminal state. Exactly one of the
/// first four moves per cell; `record_sweep_retry` additionally counts
/// every extra attempt a cell needed before settling.
#[inline]
pub fn record_sweep_cell_ok() {
    SWEEP_CELLS_OK.fetch_add(1, Relaxed);
}

/// Counts one retried sweep-cell attempt (attempt 2 and later).
#[inline]
pub fn record_sweep_retry() {
    SWEEP_CELLS_RETRIED.fetch_add(1, Relaxed);
}

/// Counts one sweep cell whose watchdog expired (terminal state).
#[inline]
pub fn record_sweep_timed_out() {
    SWEEP_CELLS_TIMED_OUT.fetch_add(1, Relaxed);
}

/// Counts one sweep cell quarantined after a panic (terminal state).
#[inline]
pub fn record_sweep_poisoned() {
    SWEEP_CELLS_POISONED.fetch_add(1, Relaxed);
}

/// Counts bytes appended to a sweep results journal.
#[inline]
pub fn record_journal_bytes(n: u64) {
    SWEEP_JOURNAL_BYTES.fetch_add(n, Relaxed);
}

/// Times one scheduler pass. Obtain before the pass ([`pass_timer`]),
/// call [`PassTimer::finish`] after; both are no-ops while profiling is
/// off.
#[derive(Debug)]
#[must_use = "call finish() after the pass to record its duration"]
pub struct PassTimer(Option<Instant>);

/// Starts timing a scheduler pass (no-op unless profiling is enabled).
#[inline]
pub fn pass_timer() -> PassTimer {
    PassTimer(if enabled() {
        Some(Instant::now())
    } else {
        None
    })
}

impl PassTimer {
    /// Records the elapsed pass duration into the global histogram.
    #[inline]
    pub fn finish(self) {
        if let Some(t0) = self.0 {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            SCHED_PASSES.fetch_add(1, Relaxed);
            PASS_NS_SUM.fetch_add(ns, Relaxed);
            PASS_NS_BUCKETS[bucket_of(ns)].fetch_add(1, Relaxed);
        }
    }
}

/// A point-in-time copy of every process-wide counter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CounterSnapshot {
    /// Scheduler passes timed (fixpoint iterations across all runs).
    pub sched_passes: u64,
    /// `earliest_start` probes.
    pub earliest_start_calls: u64,
    /// Queued candidates examined by backfill walks.
    pub backfill_attempts: u64,
    /// Candidates those walks actually started.
    pub backfill_successes: u64,
    /// Prefix simulations served from the warm master.
    pub warm_start_hits: u64,
    /// Prefix simulations that fell back to a cold replay.
    pub warm_start_misses: u64,
    /// Sweep cells that completed with a usable result.
    pub sweep_cells_ok: u64,
    /// Sweep-cell attempts beyond the first (retries).
    pub sweep_cells_retried: u64,
    /// Sweep cells whose watchdog expired.
    pub sweep_cells_timed_out: u64,
    /// Sweep cells quarantined after a panic.
    pub sweep_cells_poisoned: u64,
    /// Bytes appended to sweep results journals.
    pub sweep_journal_bytes: u64,
    /// Per-pass wall time in nanoseconds.
    pub pass_ns: Histogram,
}

impl CounterSnapshot {
    /// Reads the current process-wide counter values.
    pub fn capture() -> CounterSnapshot {
        let mut pass_ns = Histogram::new();
        for (i, b) in PASS_NS_BUCKETS.iter().enumerate() {
            let n = b.load(Relaxed);
            pass_ns.buckets[i] = n;
            pass_ns.count += n;
        }
        pass_ns.sum = PASS_NS_SUM.load(Relaxed);
        CounterSnapshot {
            sched_passes: SCHED_PASSES.load(Relaxed),
            earliest_start_calls: EARLIEST_START_CALLS.load(Relaxed),
            backfill_attempts: BACKFILL_ATTEMPTS.load(Relaxed),
            backfill_successes: BACKFILL_SUCCESSES.load(Relaxed),
            warm_start_hits: WARM_START_HITS.load(Relaxed),
            warm_start_misses: WARM_START_MISSES.load(Relaxed),
            sweep_cells_ok: SWEEP_CELLS_OK.load(Relaxed),
            sweep_cells_retried: SWEEP_CELLS_RETRIED.load(Relaxed),
            sweep_cells_timed_out: SWEEP_CELLS_TIMED_OUT.load(Relaxed),
            sweep_cells_poisoned: SWEEP_CELLS_POISONED.load(Relaxed),
            sweep_journal_bytes: SWEEP_JOURNAL_BYTES.load(Relaxed),
            pass_ns,
        }
    }

    /// Counter movement between `earlier` and this snapshot.
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            sched_passes: self.sched_passes.saturating_sub(earlier.sched_passes),
            earliest_start_calls: self
                .earliest_start_calls
                .saturating_sub(earlier.earliest_start_calls),
            backfill_attempts: self
                .backfill_attempts
                .saturating_sub(earlier.backfill_attempts),
            backfill_successes: self
                .backfill_successes
                .saturating_sub(earlier.backfill_successes),
            warm_start_hits: self.warm_start_hits.saturating_sub(earlier.warm_start_hits),
            warm_start_misses: self
                .warm_start_misses
                .saturating_sub(earlier.warm_start_misses),
            sweep_cells_ok: self.sweep_cells_ok.saturating_sub(earlier.sweep_cells_ok),
            sweep_cells_retried: self
                .sweep_cells_retried
                .saturating_sub(earlier.sweep_cells_retried),
            sweep_cells_timed_out: self
                .sweep_cells_timed_out
                .saturating_sub(earlier.sweep_cells_timed_out),
            sweep_cells_poisoned: self
                .sweep_cells_poisoned
                .saturating_sub(earlier.sweep_cells_poisoned),
            sweep_journal_bytes: self
                .sweep_journal_bytes
                .saturating_sub(earlier.sweep_journal_bytes),
            pass_ns: self.pass_ns.saturating_sub(&earlier.pass_ns),
        }
    }
}

/// Where one run's simulation time went, as surfaced by
/// `try_run_policy` (with `RunOptions::profile`) and `fairsched profile`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileReport {
    /// Counter movement attributable to the profiled region.
    pub counters: CounterSnapshot,
    /// Wall time of the profiled region, in nanoseconds.
    pub wall_ns: u64,
}

impl ProfileReport {
    /// Folds another report into this one (summing wall time).
    pub fn merge(&mut self, other: &ProfileReport) {
        let z = CounterSnapshot::default();
        let mut merged = self.counters.since(&z);
        merged.sched_passes += other.counters.sched_passes;
        merged.earliest_start_calls += other.counters.earliest_start_calls;
        merged.backfill_attempts += other.counters.backfill_attempts;
        merged.backfill_successes += other.counters.backfill_successes;
        merged.warm_start_hits += other.counters.warm_start_hits;
        merged.warm_start_misses += other.counters.warm_start_misses;
        merged.sweep_cells_ok += other.counters.sweep_cells_ok;
        merged.sweep_cells_retried += other.counters.sweep_cells_retried;
        merged.sweep_cells_timed_out += other.counters.sweep_cells_timed_out;
        merged.sweep_cells_poisoned += other.counters.sweep_cells_poisoned;
        merged.sweep_journal_bytes += other.counters.sweep_journal_bytes;
        merged.pass_ns.merge(&other.counters.pass_ns);
        self.counters = merged;
        self.wall_ns += other.wall_ns;
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = &self.counters;
        writeln!(f, "wall time            {}", fmt_ns(self.wall_ns))?;
        writeln!(
            f,
            "scheduler passes     {}  (total {}, mean {}, p50 ~{}, p99 ~{})",
            c.sched_passes,
            fmt_ns(c.pass_ns.sum()),
            fmt_ns(c.pass_ns.mean() as u64),
            fmt_ns(c.pass_ns.quantile(0.50)),
            fmt_ns(c.pass_ns.quantile(0.99)),
        )?;
        writeln!(f, "earliest_start calls {}", c.earliest_start_calls)?;
        let rate = if c.backfill_attempts == 0 {
            0.0
        } else {
            100.0 * c.backfill_successes as f64 / c.backfill_attempts as f64
        };
        writeln!(
            f,
            "backfill walk        {} candidates examined, {} started ({rate:.1}% hit rate)",
            c.backfill_attempts, c.backfill_successes,
        )?;
        write!(
            f,
            "warm-start prefix    {} hits / {} cold replays",
            c.warm_start_hits, c.warm_start_misses
        )?;
        // Sweep counters only appear when a sweep actually ran inside the
        // profiled region; plain policy runs keep the historical report.
        let sweep_moved = c.sweep_cells_ok
            + c.sweep_cells_retried
            + c.sweep_cells_timed_out
            + c.sweep_cells_poisoned
            + c.sweep_journal_bytes
            > 0;
        if sweep_moved {
            write!(
                f,
                "\nsweep cells          {} ok, {} retried, {} timed out, {} poisoned; \
                 journal {} bytes",
                c.sweep_cells_ok,
                c.sweep_cells_retried,
                c.sweep_cells_timed_out,
                c.sweep_cells_poisoned,
                c.sweep_journal_bytes,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn histogram_mean_is_exact_and_merge_adds() {
        let mut a = Histogram::new();
        for v in [1, 2, 3, 4] {
            a.record(v);
        }
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 10);
        assert!((a.mean() - 2.5).abs() < 1e-12);

        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 110);
    }

    #[test]
    fn histogram_quantile_brackets_the_samples() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1000);
        // p50 lands in 10's bucket [8,16); p100 in 1000's bucket [512,1024).
        assert_eq!(h.quantile(0.5), 8);
        assert_eq!(h.quantile(1.0), 512);
    }

    #[test]
    fn interpolated_quantiles_stay_inside_their_bucket_and_are_monotone() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1000);
        let p50 = h.quantile_interpolated(0.50);
        assert!((8.0..16.0).contains(&p50), "p50 = {p50}");
        let p100 = h.quantile_interpolated(1.0);
        assert!((512.0..=1024.0).contains(&p100), "p100 = {p100}");
        let mut prev = 0.0;
        for step in 0..=20 {
            let q = step as f64 / 20.0;
            let v = h.quantile_interpolated(q);
            assert!(v >= prev, "quantile must be monotone in q");
            prev = v;
        }
        assert_eq!(Histogram::new().quantile_interpolated(0.5), 0.0);
    }

    #[test]
    fn bucket_accessors_round_trip() {
        let mut h = Histogram::new();
        h.record(5); // bucket 3
        h.record(0); // bucket 0
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(3), 1);
        assert_eq!(h.bucket(99), 0);
        assert_eq!(h.highest_bucket(), 3);

        let mut rebuilt = Histogram::new();
        for i in 0..=h.highest_bucket() {
            if h.bucket(i) > 0 {
                rebuilt.add_bucket(i, h.bucket(i));
            }
        }
        rebuilt.set_sum(h.sum());
        assert_eq!(rebuilt, h);
    }

    #[test]
    fn counters_only_move_inside_a_scope() {
        // Outside any scope the call sites must not record: delta of the
        // earliest_start counter across un-scoped calls stays attributable
        // to concurrently-profiled tests at most (those never call this
        // private helper combination with the magic amounts below).
        let before = CounterSnapshot::capture();
        if !enabled() {
            record_backfill(1_000_003, 0);
            let after = CounterSnapshot::capture();
            assert_eq!(
                after.since(&before).backfill_attempts % 1_000_003,
                after.since(&before).backfill_attempts,
                "un-scoped record_backfill must be a no-op"
            );
        }

        let _scope = ProfileScope::enter();
        let before = CounterSnapshot::capture();
        record_earliest_start();
        record_backfill(5, 2);
        record_warm_start(true);
        record_warm_start(false);
        let timer = pass_timer();
        timer.finish();
        let d = CounterSnapshot::capture().since(&before);
        assert!(d.earliest_start_calls >= 1);
        assert!(d.backfill_attempts >= 5);
        assert!(d.backfill_successes >= 2);
        assert!(d.warm_start_hits >= 1);
        assert!(d.warm_start_misses >= 1);
        assert!(d.sched_passes >= 1);
        assert!(d.pass_ns.count() >= 1);
    }

    #[test]
    fn report_renders_every_counter() {
        let mut c = CounterSnapshot {
            sched_passes: 10,
            earliest_start_calls: 20,
            backfill_attempts: 30,
            backfill_successes: 15,
            warm_start_hits: 4,
            warm_start_misses: 1,
            ..CounterSnapshot::default()
        };
        c.pass_ns.record(1_500);
        let report = ProfileReport {
            counters: c,
            wall_ns: 2_000_000,
        };
        let text = report.to_string();
        assert!(text.contains("2.00 ms"));
        assert!(text.contains("50.0% hit rate"));
        assert!(text.contains("4 hits / 1 cold replays"));
    }
}
