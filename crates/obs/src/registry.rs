//! A typed, process-shareable metrics registry with a hand-rolled
//! Prometheus text-exposition encoder.
//!
//! The service tier (`fairschedd`) needs an always-on observer: request
//! and error counters per route, latency histograms, and live gauges for
//! queue pressure and fairness. The workspace's vendored-stub dependency
//! policy rules out the `prometheus` crate, so this module implements the
//! subset the text exposition format actually requires — counters,
//! gauges, and the workspace's existing log2 [`Histogram`] rendered as
//! cumulative `_bucket{le="..."}` series — over `std` atomics only.
//!
//! Handles ([`Counter`], [`Gauge`], [`HistogramHandle`]) are cheap
//! `Arc`-backed clones: register once, stash the handle on the hot path,
//! and never touch the registry again until scrape time. Recording is a
//! relaxed atomic add; a scrape walks the registry under a short lock and
//! loads each atom once, so scraping never blocks recording.
//!
//! Quantiles are bucket-resolution: [`Histogram::quantile_interpolated`]
//! linearly interpolates inside the log2 bucket containing the rank, so
//! p50/p95/p99 read smoothly even though samples collapse into powers of
//! two. [`parse_exposition`] is the matching decoder — enough of the text
//! format for the load test, `fairsched watch`, and CI smoke checks to
//! scrape `/metrics` without an external client library.

use crate::counters::Histogram;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

const BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter detached from any registry (useful in tests).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A gauge: a value that can go up and down. Stored as `f64` bits so both
/// integral gauges (queue depth) and fractional ones (utilization) fit.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// A gauge detached from any registry (useful in tests).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Relaxed);
    }

    /// Sets the gauge from an integer without precision surprises below
    /// 2^53 (gauge consumers treat larger values as approximate).
    #[inline]
    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    /// The current value.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Relaxed))
    }
}

/// A lock-free histogram over `u64` samples with the workspace's log2
/// bucket layout (bucket 0 holds zeros; bucket `i >= 1` holds
/// `[2^(i-1), 2^i)`). Recording is three relaxed adds; snapshotting loads
/// each bucket once into a plain [`Histogram`].
#[derive(Debug)]
pub struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A cheaply clonable handle onto a registered histogram.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Arc<HistogramCore>);

impl HistogramHandle {
    /// A histogram detached from any registry (useful in tests).
    pub fn new() -> HistogramHandle {
        HistogramHandle::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            (BUCKETS as u32 - value.leading_zeros()).min(BUCKETS as u32 - 1) as usize
        };
        self.0.buckets[bucket].fetch_add(1, Relaxed);
        self.0.count.fetch_add(1, Relaxed);
        self.0.sum.fetch_add(value, Relaxed);
    }

    /// A point-in-time copy as a mergeable [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let mut out = Histogram::new();
        for (i, b) in self.0.buckets.iter().enumerate() {
            let n = b.load(Relaxed);
            if n > 0 {
                out.add_bucket(i, n);
            }
        }
        // `sum` is loaded after the buckets: a racing `record` can make the
        // sum run slightly ahead of the copied counts, never behind by more
        // than a concurrent writer's in-flight sample — fine for gauges.
        out.set_sum(self.0.sum.load(Relaxed));
        out
    }
}

/// One registered metric family: a name, help text, a type, and one or
/// more label-set instances.
struct Family {
    name: String,
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

enum Kind {
    Counter,
    Gauge,
    Histogram,
}

struct Series {
    labels: Vec<(String, String)>,
    value: Value,
}

enum Value {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

/// A typed metrics registry rendering the Prometheus text exposition
/// format.
///
/// ```
/// use fairsched_obs::registry::Registry;
///
/// let registry = Registry::new();
/// let hits = registry.counter("cache_hits_total", "Cache hits.", &[("tier", "l1")]);
/// hits.add(3);
/// let text = registry.render();
/// assert!(text.contains("cache_hits_total{tier=\"l1\"} 3"));
/// ```
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or extends) a counter family and returns the handle for
    /// the given label set. Re-registering the same (name, labels) returns
    /// the existing handle, so callers need no coordination.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, Kind::Counter, labels, || {
            Value::Counter(Counter::new())
        }) {
            Value::Counter(c) => c,
            _ => unreachable!("counter family holds counters"),
        }
    }

    /// Registers (or extends) a gauge family; see [`Registry::counter`].
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, Kind::Gauge, labels, || {
            Value::Gauge(Gauge::new())
        }) {
            Value::Gauge(g) => g,
            _ => unreachable!("gauge family holds gauges"),
        }
    }

    /// Registers (or extends) a histogram family; see [`Registry::counter`].
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        match self.register(name, help, Kind::Histogram, labels, || {
            Value::Histogram(HistogramHandle::new())
        }) {
            Value::Histogram(h) => h,
            _ => unreachable!("histogram family holds histograms"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Value,
    ) -> Value {
        let name = sanitize_name(name);
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (sanitize_name(k), v.to_string()))
            .collect();
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => f,
            None => {
                families.push(Family {
                    name: name.clone(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(existing) = family.series.iter().find(|s| s.labels == labels) {
            return clone_value(&existing.value);
        }
        let value = make();
        let handle = clone_value(&value);
        family.series.push(Series { labels, value });
        handle
    }

    /// Renders every family in the Prometheus text exposition format
    /// (families in registration order, series in registration order;
    /// deterministic given deterministic registration).
    pub fn render(&self) -> String {
        let families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for family in families.iter() {
            let type_name = match family.kind {
                Kind::Counter => "counter",
                Kind::Gauge => "gauge",
                Kind::Histogram => "histogram",
            };
            let _ = writeln!(out, "# HELP {} {}", family.name, escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {} {type_name}", family.name);
            for series in &family.series {
                match &series.value {
                    Value::Counter(c) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            label_block(&series.labels, None),
                            c.value()
                        );
                    }
                    Value::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            family.name,
                            label_block(&series.labels, None),
                            format_f64(g.value())
                        );
                    }
                    Value::Histogram(h) => {
                        render_histogram(&mut out, &family.name, &series.labels, &h.snapshot());
                    }
                }
            }
        }
        out
    }
}

fn clone_value(v: &Value) -> Value {
    match v {
        Value::Counter(c) => Value::Counter(c.clone()),
        Value::Gauge(g) => Value::Gauge(g.clone()),
        Value::Histogram(h) => Value::Histogram(h.clone()),
    }
}

/// Renders one histogram series: cumulative `_bucket{le="..."}` lines over
/// the log2 layout (upper bounds are powers of two), then `_sum` and
/// `_count`. Empty buckets above the highest occupied one are elided —
/// except the mandatory `+Inf` bucket, which always closes the series.
fn render_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &Histogram) {
    let mut cumulative = 0u64;
    let highest = h.highest_bucket();
    for i in 0..=highest {
        let n = h.bucket(i);
        cumulative += n;
        if n == 0 && i != 0 {
            continue;
        }
        // Bucket i covers [2^(i-1), 2^i); integer samples in it are all
        // <= 2^i - 1, so `le = 2^i - 1` is the tight inclusive bound.
        // Bucket 0 holds only zeros.
        let le = if i == 0 {
            "0".to_string()
        } else {
            ((1u64 << i) - 1).to_string()
        };
        let _ = writeln!(
            out,
            "{name}_bucket{} {cumulative}",
            label_block(labels, Some(&le))
        );
    }
    let _ = writeln!(
        out,
        "{name}_bucket{} {}",
        label_block(labels, Some("+Inf")),
        h.count()
    );
    let _ = writeln!(out, "{name}_sum{} {}", label_block(labels, None), h.sum());
    let _ = writeln!(
        out,
        "{name}_count{} {}",
        label_block(labels, None),
        h.count()
    );
}

fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Maps an arbitrary string onto a valid Prometheus metric/label name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, invalid characters replaced by `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len().max(1));
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if valid { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes HELP text per the exposition format: backslash and newline.
pub fn escape_help(help: &str) -> String {
    let mut out = String::with_capacity(help.len());
    for c in help.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn format_f64(v: f64) -> String {
    if v.is_finite() && v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One decoded sample from [`parse_exposition`].
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The metric name as written (histogram series keep their `_bucket` /
    /// `_sum` / `_count` suffixes).
    pub name: String,
    /// Label pairs in written order (`le` included for bucket lines).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of the label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses Prometheus text exposition into samples, skipping comments and
/// blank lines. Malformed lines yield `Err` with the offending line — a
/// scrape that half-parses is worse than one that fails loudly.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("no value separator in {line:?}"))?;
        let value: f64 = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v
                .parse()
                .map_err(|_| format!("bad sample value in {line:?}"))?,
        };
        let (name, labels) = match series.split_once('{') {
            None => (series.trim().to_string(), Vec::new()),
            Some((name, rest)) => {
                let rest = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("unterminated label block in {line:?}"))?;
                (name.trim().to_string(), parse_labels(rest, line)?)
            }
        };
        if name.is_empty() {
            return Err(format!("empty metric name in {line:?}"));
        }
        samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    Ok(samples)
}

fn parse_labels(block: &str, line: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = block.chars().peekable();
    loop {
        // Key.
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            return Err(format!("malformed label in {line:?}"));
        }
        // Quoted, escaped value.
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    _ => return Err(format!("bad escape in {line:?}")),
                },
                Some(c) => value.push(c),
                None => return Err(format!("unterminated label value in {line:?}")),
            }
        }
        labels.push((key.trim().to_string(), value));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(_) => return Err(format!("malformed label block in {line:?}")),
        }
    }
    Ok(labels)
}

/// Reconstructs a quantile from parsed `_bucket` samples of one histogram
/// series: `buckets` is `(le_upper_bound, cumulative_count)` in ascending
/// `le` order (the `+Inf` bucket closes it). Linear interpolation within
/// the containing bucket, like [`Histogram::quantile_interpolated`].
pub fn quantile_from_buckets(buckets: &[(f64, u64)], q: f64) -> f64 {
    let total = match buckets.last() {
        Some(&(_, n)) if n > 0 => n,
        _ => return 0.0,
    };
    let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut lower_edge = 0.0f64;
    let mut below = 0u64;
    for &(le, cumulative) in buckets {
        if cumulative >= rank {
            let in_bucket = (cumulative - below) as f64;
            let into = (rank - below) as f64;
            let upper = if le.is_finite() { le } else { lower_edge * 2.0 };
            return lower_edge + (upper - lower_edge) * (into / in_bucket.max(1.0));
        }
        below = cumulative;
        lower_edge = if le.is_finite() { le } else { lower_edge };
    }
    lower_edge
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_render_and_accumulate() {
        let registry = Registry::new();
        let c = registry.counter(
            "requests_total",
            "Requests served.",
            &[("route", "/v1/jobs")],
        );
        c.add(41);
        c.inc();
        let g = registry.gauge("queue_depth", "Jobs queued.", &[]);
        g.set_u64(7);
        let h = registry.histogram("latency_ns", "Latency.", &[("route", "/v1/jobs")]);
        h.record(1000);
        h.record(3000);

        let text = registry.render();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total{route=\"/v1/jobs\"} 42"));
        assert!(text.contains("# TYPE queue_depth gauge"));
        assert!(text.contains("queue_depth 7"));
        assert!(text.contains("# TYPE latency_ns histogram"));
        assert!(text.contains("latency_ns_sum{route=\"/v1/jobs\"} 4000"));
        assert!(text.contains("latency_ns_count{route=\"/v1/jobs\"} 2"));
        assert!(text.contains("le=\"+Inf\"")); // mandatory closing bucket
    }

    #[test]
    fn re_registering_returns_the_same_handle() {
        let registry = Registry::new();
        let a = registry.counter("hits", "", &[("k", "v")]);
        let b = registry.counter("hits", "", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(a.value(), 2);
        assert_eq!(b.value(), 2);
        // A different label set is a different series.
        let c = registry.counter("hits", "", &[("k", "w")]);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn metric_names_and_labels_are_escaped() {
        let registry = Registry::new();
        registry.counter(
            "bad name-1",
            "help with \\ and\nnewline",
            &[("la bel", "x\"y\\z\nw")],
        );
        let text = registry.render();
        assert!(text.contains("# HELP bad_name_1 help with \\\\ and\\nnewline"));
        assert!(text.contains("bad_name_1{la_bel=\"x\\\"y\\\\z\\nw\"} 0"));
        // Sanitized names must satisfy the exposition grammar.
        assert_eq!(sanitize_name("9lives"), "_lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let registry = Registry::new();
        let h = registry.histogram("h", "", &[]);
        for v in [0, 1, 3, 3, 900, 70_000] {
            h.record(v);
        }
        let text = registry.render();
        let samples = parse_exposition(&text).unwrap();
        let buckets: Vec<(f64, u64)> = samples
            .iter()
            .filter(|s| s.name == "h_bucket")
            .map(|s| {
                let le = s.label("le").unwrap();
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().unwrap()
                };
                (le, s.value as u64)
            })
            .collect();
        assert!(buckets.len() >= 2);
        // `le` ascending, cumulative counts non-decreasing, +Inf == count.
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0, "le must ascend: {buckets:?}");
            assert!(pair[0].1 <= pair[1].1, "cumulative: {buckets:?}");
        }
        assert_eq!(buckets.last().unwrap(), &(f64::INFINITY, 6));
        let count = samples.iter().find(|s| s.name == "h_count").unwrap();
        assert_eq!(count.value as u64, 6);
    }

    #[test]
    fn golden_exposition_snapshot() {
        let registry = Registry::new();
        let c = registry.counter(
            "fairschedd_http_requests_total",
            "HTTP requests received, by route.",
            &[("route", "/v1/jobs"), ("method", "POST")],
        );
        c.add(3);
        let g = registry.gauge("fairschedd_jobs_queued", "Jobs waiting in the queue.", &[]);
        g.set_u64(2);
        let h = registry.histogram(
            "fairschedd_http_request_duration_ns",
            "Request latency in nanoseconds.",
            &[("route", "/v1/jobs")],
        );
        h.record(0);
        h.record(1);
        h.record(5);

        let expected = "\
# HELP fairschedd_http_requests_total HTTP requests received, by route.
# TYPE fairschedd_http_requests_total counter
fairschedd_http_requests_total{route=\"/v1/jobs\",method=\"POST\"} 3
# HELP fairschedd_jobs_queued Jobs waiting in the queue.
# TYPE fairschedd_jobs_queued gauge
fairschedd_jobs_queued 2
# HELP fairschedd_http_request_duration_ns Request latency in nanoseconds.
# TYPE fairschedd_http_request_duration_ns histogram
fairschedd_http_request_duration_ns_bucket{route=\"/v1/jobs\",le=\"0\"} 1
fairschedd_http_request_duration_ns_bucket{route=\"/v1/jobs\",le=\"1\"} 2
fairschedd_http_request_duration_ns_bucket{route=\"/v1/jobs\",le=\"7\"} 3
fairschedd_http_request_duration_ns_bucket{route=\"/v1/jobs\",le=\"+Inf\"} 3
fairschedd_http_request_duration_ns_sum{route=\"/v1/jobs\"} 6
fairschedd_http_request_duration_ns_count{route=\"/v1/jobs\"} 3
";
        assert_eq!(registry.render(), expected);
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let registry = Registry::new();
        registry
            .counter("a_total", "x", &[("k", "weird \"v\\al\nue")])
            .add(9);
        registry.gauge("b", "y", &[]).set(0.25);
        let samples = parse_exposition(&registry.render()).unwrap();
        let a = samples.iter().find(|s| s.name == "a_total").unwrap();
        assert_eq!(a.value, 9.0);
        assert_eq!(a.label("k"), Some("weird \"v\\al\nue"));
        let b = samples.iter().find(|s| s.name == "b").unwrap();
        assert_eq!(b.value, 0.25);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("no_value").is_err());
        assert!(parse_exposition("name{unterminated=\"x} 1").is_err());
        assert!(parse_exposition("name{k=\"v\"} not_a_number").is_err());
    }

    #[test]
    fn quantiles_from_buckets_interpolate() {
        // 99 samples <= 8, 1 sample in (512, 1024].
        let buckets = [(8.0, 99u64), (1024.0, 100), (f64::INFINITY, 100)];
        let p50 = quantile_from_buckets(&buckets, 0.50);
        assert!(p50 > 0.0 && p50 <= 8.0, "p50 = {p50}");
        let p100 = quantile_from_buckets(&buckets, 1.0);
        assert!(p100 > 8.0 && p100 <= 1024.0, "p100 = {p100}");
        assert_eq!(quantile_from_buckets(&[], 0.5), 0.0);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let registry = std::sync::Arc::new(Registry::new());
        let c = registry.counter("n", "", &[]);
        let h = registry.histogram("h", "", &[]);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.value(), 40_000);
        assert_eq!(h.snapshot().count(), 40_000);
    }
}
