//! A tiny sink-backed logging facade.
//!
//! The CLI and experiment binaries historically reported skipped SWF
//! records and sweep progress with bare `eprintln!` — impossible to
//! silence and impossible to assert on. This facade routes those
//! diagnostics through one chokepoint:
//!
//! * [`set_quiet`] (driven by the `--quiet` CLI flag or the
//!   `FAIRSCHED_QUIET` environment variable via [`quiet_from_env`])
//!   suppresses [`info`] progress chatter; [`warn`] messages still get
//!   through, prefixed `warning:`, unless quiet is on.
//! * [`capture`] redirects both levels into a buffer for the duration of
//!   a closure, so tests can assert on diagnostics without scraping
//!   stderr. Captures are serialized process-wide.
//!
//! Library crates (`sim`, `core`, `metrics`) do not log at all — only the
//! binaries' edges do — so this facade stays out of the hot path.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Progress chatter; dropped when quiet.
    Info,
    /// Something was skipped or ignored; dropped when quiet.
    Warn,
}

static QUIET: AtomicBool = AtomicBool::new(false);

type CaptureBuf = Mutex<Option<Vec<(Level, String)>>>;

fn capture_buf() -> &'static CaptureBuf {
    static BUF: OnceLock<CaptureBuf> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(None))
}

fn capture_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Suppresses (or restores) all facade output.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Relaxed);
}

/// True when output is suppressed.
pub fn is_quiet() -> bool {
    QUIET.load(Relaxed)
}

/// Applies the `FAIRSCHED_QUIET` environment variable (any non-empty,
/// non-`0` value means quiet). Binaries without their own flag parsing
/// call this once at startup.
pub fn quiet_from_env() {
    if let Ok(v) = std::env::var("FAIRSCHED_QUIET") {
        set_quiet(!v.is_empty() && v != "0");
    }
}

fn emit(level: Level, msg: &str) {
    // A live capture takes the message regardless of quiet, so tests see
    // exactly what would have been printed with quiet off.
    if let Some(buf) = capture_buf()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_mut()
    {
        buf.push((level, msg.to_string()));
        return;
    }
    if is_quiet() {
        return;
    }
    match level {
        Level::Info => eprintln!("{msg}"),
        Level::Warn => eprintln!("warning: {msg}"),
    }
}

/// Reports progress. Suppressed by `--quiet` / `FAIRSCHED_QUIET`.
pub fn info(msg: impl AsRef<str>) {
    emit(Level::Info, msg.as_ref());
}

/// Reports a recoverable oddity (skipped records, ignored input).
/// Rendered with a `warning:` prefix. Suppressed by `--quiet`.
pub fn warn(msg: impl AsRef<str>) {
    emit(Level::Warn, msg.as_ref());
}

/// Runs `f` with facade output redirected into the returned buffer.
///
/// Captures are serialized across threads: concurrent callers queue on a
/// process-wide lock, so records never interleave between tests.
pub fn capture<F: FnOnce()>(f: F) -> Vec<(Level, String)> {
    let _serialize: MutexGuard<'_, ()> = capture_lock()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    *capture_buf().lock().unwrap_or_else(PoisonError::into_inner) = Some(Vec::new());
    f();
    capture_buf()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_sees_both_levels_and_restores_stderr() {
        let records = capture(|| {
            info("starting sweep");
            warn("skipped 3 records");
        });
        assert_eq!(
            records,
            vec![
                (Level::Info, "starting sweep".to_string()),
                (Level::Warn, "skipped 3 records".to_string()),
            ]
        );
        // After capture the buffer is gone; emitting again must not panic.
        info("back to stderr");
    }

    #[test]
    fn capture_records_even_when_quiet() {
        let records = capture(|| {
            let was = is_quiet();
            set_quiet(true);
            warn("still captured");
            set_quiet(was);
        });
        assert_eq!(records.len(), 1);
    }
}
