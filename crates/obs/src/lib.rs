//! # fairsched-obs
//!
//! Observability for the fairsched stack: decision traces, runtime
//! counters, and a small logging facade. Everything here is designed to be
//! **zero-cost when off**:
//!
//! * Tracing rides an `Option<&SharedSink>` threaded through the simulator
//!   and engines — untraced runs test one `Option` per emission site and
//!   otherwise compile to the historical code path. The
//!   zero-*interference* half of the contract (a traced run produces a
//!   byte-identical `Schedule`) is pinned by proptests at the workspace
//!   root.
//! * Profiling counters hide behind one relaxed atomic load
//!   ([`counters::enabled`]); until a [`counters::ProfileScope`] is alive,
//!   instrumented call sites skip both the increment and the clock read.
//!
//! The crate deliberately depends only on `fairsched-workload` (for
//! [`JobId`](fairsched_workload::job::JobId) and
//! [`Time`](fairsched_workload::time::Time)): the simulator depends on
//! *it*, never the other way around.
//!
//! Record serialization is newline-delimited JSON. The workspace's vendored
//! `serde` is an API-surface stub whose derives expand to nothing, so
//! [`TraceRecord::to_jsonl`] writes the line by hand — every field is
//! numeric or a fixed tag, so no escaping machinery is needed.

pub mod counters;
pub mod log;
pub mod registry;
pub mod trace;

pub use counters::{CounterSnapshot, Histogram, ProfileReport, ProfileScope};
pub use registry::{Counter, Gauge, HistogramHandle, Registry};
pub use trace::{DecisionTracer, SharedSink, StartCause, TraceHandle, TraceRecord, TraceSink};
