//! Synthetic CPlant/Ross workload generator.
//!
//! The raw CPlant trace the paper evaluates (13 614 jobs, Dec 2002–Jul 2003)
//! was never fully published, so this reproduction generates a synthetic
//! equivalent calibrated against everything the paper *does* publish:
//!
//! * **Job mix** — per-category job counts match Table 1 exactly (at
//!   `scale = 1.0`), and per-category runtimes are iteratively rescaled so
//!   processor-hours approximate Table 2.
//! * **Arrival burstiness** — jobs are placed into weeks by a greedy
//!   budget-matching pass against a 33-week offered-load profile shaped like
//!   Figure 3 (several weeks far above 100%, followed by lulls), then spread
//!   within the week with weekday/diurnal structure.
//! * **Estimate inaccuracy** — wall-clock limits are drawn from
//!   [`EstimateModel`], reproducing the over-estimation wedge of Figures 5–6
//!   and its width-independence (Figure 7).
//! * **User population** — a Zipf-skewed population of users supplies the
//!   identities the fairshare priority needs; a few heavy users dominate
//!   usage, which is precisely the situation §5.2's starvation-queue
//!   restriction targets.
//!
//! Generation is fully deterministic given the seed (ChaCha8 PRNG), which the
//! whole evaluation relies on.

use crate::categories::{LengthCategory, WidthCategory, LENGTH_BUCKETS, WIDTH_BUCKETS};
use crate::estimate::EstimateModel;
use crate::job::{GroupId, Job, JobId, JobStatus, UserId};
use crate::tables::{table1_job_counts, table2_proc_hours};
use crate::time::{Time, DAY, HOUR, TRACE_WEEKS, WEEK};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Default machine size used across the reproduction.
///
/// The paper never states Ross's node count. 1 024 nodes makes the Table-2
/// workload (~3.9 M processor-hours over 231 days) produce a mean offered
/// load of ~70% with burst weeks well above 100% — the Figure 3 profile.
pub const DEFAULT_NODES: u32 = 1024;

/// Default user-population size (the trace anonymized users sequentially;
/// CPlant-era Sandia machines served on the order of 150–200 active users).
pub const DEFAULT_USERS: u32 = 167;

/// The generator: configure, then call [`CplantModel::generate`].
///
/// ```
/// use fairsched_workload::CplantModel;
///
/// // A 2% slice of the CPlant mix on the default 1024-node machine.
/// let trace = CplantModel::new(7).with_scale(0.02).generate();
/// assert!(!trace.is_empty());
/// // Seeded: the same model regenerates the identical trace.
/// assert_eq!(trace, CplantModel::new(7).with_scale(0.02).generate());
/// // Sorted by submit time with valid shapes throughout.
/// fairsched_workload::job::validate_trace(&trace).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct CplantModel {
    /// PRNG seed; equal seeds give byte-identical traces.
    pub seed: u64,
    /// Machine size in nodes (caps sampled widths).
    pub nodes: u32,
    /// Fraction of the Table 1 job counts to generate, in `(0, 1]`.
    /// `scale = 1.0` reproduces the full 13 236-job mix; smaller scales give
    /// proportionally thinner traces for fast tests, with the offered-load
    /// *ratio* preserved by shrinking the horizon too.
    pub scale: f64,
    /// Number of distinct users.
    pub users: u32,
    /// Number of distinct groups.
    pub groups: u32,
    /// Zipf exponent of per-user activity (larger = more skewed).
    pub zipf_exponent: f64,
    /// Multiplicative weight boost when a job's width bucket matches the
    /// submitting user's "home" bucket. Users resubmit similar jobs (the
    /// same codes at the same scales), so a boost above 1 concentrates each
    /// user's jobs around a width niche. Defaults to `1.0` (off): the
    /// reproduction's headline results use the unconditioned population, and
    /// the boost is an opt-in realism knob whose effect is studied
    /// separately. When off, no extra randomness is consumed, so traces are
    /// identical to pre-affinity versions of this generator.
    pub width_affinity: f64,
    /// Wall-clock-estimate model.
    pub estimate: EstimateModel,
    /// Relative offered-load weight per week; length sets the horizon.
    pub weekly_load: Vec<f64>,
}

impl CplantModel {
    /// A model reproducing the paper's full workload with the given seed.
    pub fn new(seed: u64) -> Self {
        CplantModel {
            seed,
            nodes: DEFAULT_NODES,
            scale: 1.0,
            users: DEFAULT_USERS,
            groups: 20,
            zipf_exponent: 1.1,
            width_affinity: 1.0,
            estimate: EstimateModel::default(),
            weekly_load: default_weekly_load().to_vec(),
        }
    }

    /// Sets the trace scale (see [`CplantModel::scale`]); the horizon shrinks
    /// proportionally so offered load stays Figure-3-like.
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        self.scale = scale;
        let weeks = ((TRACE_WEEKS as f64 * scale).ceil() as usize).max(1);
        self.weekly_load.truncate(weeks);
        self
    }

    /// Sets the machine size.
    pub fn with_nodes(mut self, nodes: u32) -> Self {
        assert!(nodes >= 1);
        self.nodes = nodes;
        self
    }

    /// Sets the user-population size.
    pub fn with_users(mut self, users: u32) -> Self {
        assert!(users >= 1);
        self.users = users;
        self
    }

    /// The simulated horizon in seconds (one week per profile entry).
    pub fn horizon(&self) -> Time {
        self.weekly_load.len() as Time * WEEK
    }

    /// Generates the trace: jobs sorted by submit time with sequential ids.
    pub fn generate(&self) -> Vec<Job> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let counts = table1_job_counts();
        let targets = table2_proc_hours();
        let mut users = UserModel::new(
            self.users,
            self.zipf_exponent,
            self.width_affinity,
            &mut rng,
        );

        // 1. Sample each category cell's jobs (width + calibrated runtime).
        let mut shapes: Vec<(u32, Time)> = Vec::new();
        for w in 0..WIDTH_BUCKETS {
            for l in 0..LENGTH_BUCKETS {
                let wc = WidthCategory(w);
                let lc = LengthCategory(l);
                let n = scaled_count(*counts.get(wc, lc), self.scale, &mut rng);
                if n == 0 {
                    continue;
                }
                let target_hours = *targets.get(wc, lc) * self.scale;
                shapes.extend(self.sample_cell(wc, lc, n, target_hours, &mut rng));
            }
        }

        // 2. Assign each job to a week: greedy budget matching so weekly
        //    offered proc-hours track the Figure-3 profile. Place the
        //    heaviest jobs first — they dominate a week's load.
        shapes.sort_by_key(|&(nodes, runtime)| std::cmp::Reverse(nodes as u64 * runtime));
        let weeks = self.assign_weeks(&shapes, &mut rng);

        // 3. Materialize jobs: intra-week arrival, user, estimate.
        let mut jobs: Vec<Job> = shapes
            .iter()
            .zip(weeks)
            .map(|(&(nodes, runtime), week)| {
                let submit = week as Time * WEEK + self.intra_week_offset(&mut rng);
                let user = users.sample_for_width(nodes, &mut rng);
                Job {
                    id: JobId(0), // assigned after sorting
                    user: UserId(user),
                    group: GroupId(user % self.groups),
                    submit,
                    nodes,
                    runtime,
                    estimate: self.estimate.sample(runtime, &mut rng),
                    status: JobStatus::Completed,
                }
            })
            .collect();

        jobs.sort_by_key(|j| j.submit);
        for (i, job) in jobs.iter_mut().enumerate() {
            job.id = JobId(i as u32 + 1);
        }
        jobs
    }

    /// Samples one category cell: `n` (width, runtime) pairs whose total
    /// processor-hours approach `target_hours`.
    fn sample_cell(
        &self,
        wc: WidthCategory,
        lc: LengthCategory,
        n: u64,
        target_hours: f64,
        rng: &mut ChaCha8Rng,
    ) -> Vec<(u32, Time)> {
        let (wlo, whi) = wc.bounds();
        // Jobs cannot be wider than the machine: on a small configured
        // machine the widest buckets collapse onto the full machine size.
        let whi = whi.min(self.nodes);
        let wlo = wlo.min(whi);
        let (rlo, rhi) = lc.bounds();

        let widths: Vec<u32> = (0..n).map(|_| sample_width(wlo, whi, rng)).collect();
        // Log-uniform base runtimes.
        let mut runtimes: Vec<f64> = (0..n)
            .map(|_| {
                let lo = (rlo as f64).ln();
                let hi = (rhi as f64).ln();
                rng.gen_range(lo..hi).exp()
            })
            .collect();

        // Calibrate total proc-hours toward the Table 2 target by uniform
        // rescaling, clamped to the bucket. A few rounds converge unless the
        // target is infeasible for the bucket (then the clamp wins, which is
        // the right physical answer).
        if target_hours > 0.0 {
            for _ in 0..6 {
                let total: f64 = widths
                    .iter()
                    .zip(&runtimes)
                    .map(|(&w, &r)| w as f64 * r / 3600.0)
                    .sum();
                if total <= 0.0 {
                    break;
                }
                let ratio = target_hours / total;
                if (ratio - 1.0).abs() < 0.02 {
                    break;
                }
                for r in &mut runtimes {
                    *r = (*r * ratio).clamp(rlo as f64, rhi as f64 - 1.0);
                }
            }
        }

        widths
            .into_iter()
            .zip(runtimes)
            .map(|(w, r)| (w, (r as Time).clamp(rlo.max(1), rhi - 1)))
            .collect()
    }

    /// Greedy week assignment: each week has a proc-hour budget proportional
    /// to its profile weight; each job (heaviest first) lands in a week drawn
    /// with probability proportional to remaining budget.
    fn assign_weeks(&self, shapes: &[(u32, Time)], rng: &mut ChaCha8Rng) -> Vec<usize> {
        let weights = &self.weekly_load;
        let wsum: f64 = weights.iter().sum();
        assert!(wsum > 0.0, "weekly load profile must have positive mass");
        let total_ph: f64 = shapes
            .iter()
            .map(|&(n, r)| n as f64 * r as f64 / 3600.0)
            .sum();
        let mut budget: Vec<f64> = weights.iter().map(|w| w / wsum * total_ph).collect();

        shapes
            .iter()
            .map(|&(nodes, runtime)| {
                let cost = nodes as f64 * runtime as f64 / 3600.0;
                let live: f64 = budget.iter().map(|b| b.max(0.0)).sum();
                let week = if live <= 0.0 {
                    // Budgets exhausted (rounding tail): fall back to profile.
                    weighted_index(weights, rng)
                } else {
                    let mut pick = rng.gen_range(0.0..live);
                    let mut chosen = budget.len() - 1;
                    for (i, b) in budget.iter().enumerate() {
                        let b = b.max(0.0);
                        if pick < b {
                            chosen = i;
                            break;
                        }
                        pick -= b;
                    }
                    chosen
                };
                budget[week] -= cost;
                week
            })
            .collect()
    }

    /// Offset within a week: weekdays busier than weekends, work hours
    /// busier than nights (the "mid-morning heavy load" of §4's discussion).
    fn intra_week_offset(&self, rng: &mut ChaCha8Rng) -> Time {
        const DAY_WEIGHTS: [f64; 7] = [1.0, 1.0, 1.0, 1.0, 0.9, 0.45, 0.4];
        let day = weighted_index(&DAY_WEIGHTS, rng) as Time;
        // Hour-of-day weights: quiet nights, ramp at 8, peak 9–17.
        let hour_weight = |h: usize| -> f64 {
            match h {
                0..=6 => 0.25,
                7 => 0.6,
                8..=17 => 1.0,
                18..=20 => 0.7,
                _ => 0.4,
            }
        };
        let hw: Vec<f64> = (0..24).map(hour_weight).collect();
        let hour = weighted_index(&hw, rng) as Time;
        day * DAY + hour * HOUR + rng.gen_range(0..HOUR)
    }
}

/// Scales a Table-1 cell count, stochastically rounding the fractional part
/// so expectations are exact even at tiny scales.
fn scaled_count(count: u64, scale: f64, rng: &mut ChaCha8Rng) -> u64 {
    if (scale - 1.0).abs() < f64::EPSILON {
        return count;
    }
    let exact = count as f64 * scale;
    let base = exact.floor();
    let extra = if rng.gen::<f64>() < exact - base {
        1
    } else {
        0
    };
    base as u64 + extra
}

/// Samples a node count in `[lo, hi]`, weighting the "standard" allocations
/// users actually pick: powers of two 10×, perfect squares 4×, others 1×
/// (the clustering visible in Figure 4).
fn sample_width(lo: u32, hi: u32, rng: &mut ChaCha8Rng) -> u32 {
    debug_assert!(lo <= hi);
    if lo == hi {
        return lo;
    }
    let weight = |x: u32| -> f64 {
        if x.is_power_of_two() {
            10.0
        } else if is_square(x) {
            4.0
        } else {
            1.0
        }
    };
    // Bucket ranges are small (≤ 512 values); direct weighted choice is fine.
    let total: f64 = (lo..=hi).map(weight).sum();
    let mut pick = rng.gen_range(0.0..total);
    for x in lo..=hi {
        let w = weight(x);
        if pick < w {
            return x;
        }
        pick -= w;
    }
    hi
}

fn is_square(x: u32) -> bool {
    let r = (x as f64).sqrt().round() as u32;
    r * r == x
}

/// Weighted categorical draw over arbitrary non-negative weights.
fn weighted_index(weights: &[f64], rng: &mut ChaCha8Rng) -> usize {
    let total: f64 = weights.iter().sum();
    debug_assert!(total > 0.0);
    let mut pick = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if pick < w {
            return i;
        }
        pick -= w;
    }
    weights.len() - 1
}

/// User population with Zipf-skewed activity and per-user width affinity:
/// a user is drawn with weight `zipf(rank) × boost` where the boost applies
/// when the job's width bucket is the user's home bucket.
struct UserModel {
    zipf: Vec<f64>,
    home: Vec<usize>, // home width-bucket index per user (0-based user)
    boost: f64,
    /// Lazily built cumulative tables, one per width bucket.
    cumulative: Vec<Option<Vec<f64>>>,
}

impl UserModel {
    fn new(n: u32, exponent: f64, boost: f64, rng: &mut ChaCha8Rng) -> Self {
        let zipf: Vec<f64> = (1..=n)
            .map(|rank| 1.0 / (rank as f64).powf(exponent))
            .collect();
        // Home buckets follow the overall job-count mix, so popular widths
        // have proportionally many "resident" users. With the boost off, no
        // homes are drawn at all — keeping the RNG stream (and thus every
        // generated trace) identical to an affinity-free generator.
        let home = if (boost - 1.0).abs() < f64::EPSILON {
            vec![usize::MAX; n as usize]
        } else {
            let bucket_weights: Vec<f64> = {
                let counts = table1_job_counts();
                counts
                    .row_totals()
                    .iter()
                    .map(|&c| c as f64 + 1.0)
                    .collect()
            };
            (0..n)
                .map(|_| weighted_index(&bucket_weights, rng))
                .collect()
        };
        UserModel {
            zipf,
            home,
            boost,
            cumulative: vec![None; WIDTH_BUCKETS],
        }
    }

    fn sample_for_width(&mut self, nodes: u32, rng: &mut ChaCha8Rng) -> u32 {
        let bucket = crate::categories::WidthCategory::of(nodes).0;
        let (zipf, home, boost) = (&self.zipf, &self.home, self.boost);
        let table = self.cumulative[bucket].get_or_insert_with(|| {
            let mut acc = 0.0;
            zipf.iter()
                .zip(home)
                .map(|(&z, &h)| {
                    acc += if h == bucket { z * boost } else { z };
                    acc
                })
                .collect()
        });
        let total = *table.last().expect("at least one user");
        let pick = rng.gen_range(0.0..total);
        let idx = table.partition_point(|&c| c <= pick);
        idx as u32 + 1
    }
}

/// The 33-week offered-load profile, hand-shaped from Figure 3: repeated
/// bursts well above 100% of capacity, each followed by a lull (the paper
/// attributes the lulls to users backing off from long queues).
pub fn default_weekly_load() -> [f64; TRACE_WEEKS] {
    [
        0.50, 0.70, 1.10, 1.60, 1.30, 0.60, 0.40, 0.90, 1.40, 1.80, 1.20, 0.70, 0.50, 1.00, 1.50,
        1.10, 0.80, 0.60, 1.20, 1.70, 1.30, 0.90, 0.50, 0.80, 1.30, 1.60, 1.00, 0.60, 0.90, 1.40,
        1.10, 0.70, 0.40,
    ]
}

/// A small uniform random trace for tests and property-based checks — *not*
/// CPlant-shaped, just structurally valid and seeded.
pub fn random_trace(seed: u64, n_jobs: usize, max_nodes: u32, max_runtime: Time) -> Vec<Job> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut submit = 0u64;
    (0..n_jobs)
        .map(|i| {
            submit += rng.gen_range(0..=max_runtime / 4 + 1);
            let runtime = rng.gen_range(1..=max_runtime);
            let over = rng.gen_range(1.0..3.0f64);
            Job::new(
                i as u32 + 1,
                rng.gen_range(1..=8),
                1,
                submit,
                rng.gen_range(1..=max_nodes),
                runtime,
                ((runtime as f64 * over) as Time).max(1),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::validate_trace;
    use crate::tables::{job_counts, proc_hours, TABLE1_TOTAL_JOBS};

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = CplantModel::new(7).with_scale(0.05).generate();
        let b = CplantModel::new(7).with_scale(0.05).generate();
        assert_eq!(a, b);
        let c = CplantModel::new(8).with_scale(0.05).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn full_scale_counts_match_table1_exactly() {
        let jobs = CplantModel::new(1).generate();
        assert_eq!(jobs.len() as u64, TABLE1_TOTAL_JOBS);
        let counts = job_counts(&jobs);
        let expected = table1_job_counts();
        for (w, l, &c) in expected.iter() {
            assert_eq!(
                *counts.get(w, l),
                c,
                "cell ({}, {}) count mismatch",
                w.label(),
                l.label()
            );
        }
    }

    #[test]
    fn full_scale_proc_hours_track_table2() {
        let jobs = CplantModel::new(1).generate();
        let hours = proc_hours(&jobs);
        let target = table2_proc_hours();

        // Aggregate within 12%.
        let ratio = hours.total() / target.total();
        assert!(
            (0.88..1.12).contains(&ratio),
            "total proc-hours off: generated {} vs target {}",
            hours.total(),
            target.total()
        );

        // Most calibratable cells within 35% (clamping makes a few cells
        // infeasible; the two inconsistent 513+ cells are excluded).
        let counts = table1_job_counts();
        let mut ok = 0usize;
        let mut checked = 0usize;
        for (w, l, &t) in target.iter() {
            if t <= 0.0 || *counts.get(w, l) == 0 {
                continue;
            }
            checked += 1;
            let g = *hours.get(w, l);
            if (g / t - 1.0).abs() < 0.35 {
                ok += 1;
            }
        }
        assert!(
            ok as f64 >= 0.8 * checked as f64,
            "only {ok}/{checked} cells within 35% of Table 2"
        );
    }

    #[test]
    fn trace_is_valid_and_sorted() {
        let jobs = CplantModel::new(3).with_scale(0.1).generate();
        validate_trace(&jobs).unwrap();
        assert!(!jobs.is_empty());
    }

    #[test]
    fn arrivals_stay_within_the_horizon() {
        let model = CplantModel::new(5).with_scale(0.2);
        let horizon = model.horizon();
        let jobs = model.generate();
        assert!(jobs.iter().all(|j| j.submit < horizon));
    }

    #[test]
    fn widths_respect_machine_size() {
        let model = CplantModel::new(5).with_nodes(256);
        let jobs = model.with_scale(0.1).generate();
        assert!(jobs.iter().all(|j| j.nodes <= 256));
    }

    #[test]
    fn weekly_load_tracks_the_profile_shape() {
        let model = CplantModel::new(11);
        let jobs = model.generate();
        let weights = default_weekly_load();
        // Offered proc-hours per week.
        let mut per_week = vec![0.0f64; weights.len()];
        for j in &jobs {
            per_week[(j.submit / WEEK) as usize] += j.proc_hours();
        }
        // Heaviest profile week must carry more offered load than the
        // lightest, by a wide margin.
        let (hi, _) = weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        let (lo, _) = weights
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert!(
            per_week[hi] > 2.0 * per_week[lo],
            "burst week {} ({}) not heavier than lull week {} ({})",
            hi,
            per_week[hi],
            lo,
            per_week[lo]
        );
        // Burst weeks exceed 100% offered load (Figure 3's signature).
        let capacity_ph = DEFAULT_NODES as f64 * WEEK as f64 / 3600.0;
        assert!(per_week[hi] / capacity_ph > 1.0);
    }

    #[test]
    fn user_population_is_zipf_skewed() {
        let jobs = CplantModel::new(13).with_scale(0.3).generate();
        let mut usage = std::collections::HashMap::new();
        for j in &jobs {
            *usage.entry(j.user).or_insert(0u64) += j.proc_seconds();
        }
        let mut totals: Vec<u64> = usage.values().copied().collect();
        totals.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = totals.iter().sum();
        let top10: u64 = totals.iter().take(10).sum();
        // The top 10 users should dominate: the workload §5.2 targets.
        assert!(
            top10 as f64 > 0.3 * total as f64,
            "top-10 users only {top10} of {total}"
        );
        // But not a single-user monoculture.
        assert!(usage.len() > 40, "only {} active users", usage.len());
    }

    #[test]
    fn some_jobs_underestimate_their_runtime() {
        let jobs = CplantModel::new(17).with_scale(0.3).generate();
        let under = jobs.iter().filter(|j| j.runtime > j.estimate).count();
        let frac = under as f64 / jobs.len() as f64;
        assert!(
            (0.01..0.10).contains(&frac),
            "under-estimating fraction {frac} outside band"
        );
    }

    #[test]
    fn overestimation_shrinks_with_runtime_like_figure_6() {
        let jobs = CplantModel::new(19).generate();
        let mean_log_factor = |lo: Time, hi: Time| -> f64 {
            let sel: Vec<f64> = jobs
                .iter()
                .filter(|j| j.runtime >= lo && j.runtime < hi && j.estimate >= j.runtime)
                .map(|j| j.overestimation_factor().log10())
                .collect();
            sel.iter().sum::<f64>() / sel.len().max(1) as f64
        };
        let short = mean_log_factor(1, 900);
        let long = mean_log_factor(DAY, 30 * DAY);
        assert!(
            short > long + 0.5,
            "short-job over-estimation ({short}) not >> long-job ({long})"
        );
    }

    #[test]
    fn scaled_traces_shrink_proportionally() {
        let jobs = CplantModel::new(23).with_scale(0.1).generate();
        let n = jobs.len() as f64;
        let expect = TABLE1_TOTAL_JOBS as f64 * 0.1;
        assert!(
            (n - expect).abs() < 0.1 * expect,
            "scale 0.1 gave {n} jobs, expected ≈{expect}"
        );
    }

    #[test]
    fn width_affinity_concentrates_each_users_widths() {
        use crate::categories::WidthCategory;
        use std::collections::HashMap;
        // Fraction of a user's jobs that land in the user's modal width
        // bucket, averaged over users with ≥ 10 jobs.
        let concentration = |jobs: &[Job]| -> f64 {
            let mut per_user: HashMap<UserId, Vec<usize>> = HashMap::new();
            for j in jobs {
                per_user
                    .entry(j.user)
                    .or_default()
                    .push(WidthCategory::of(j.nodes).0);
            }
            let mut fracs = Vec::new();
            for buckets in per_user.values().filter(|v| v.len() >= 10) {
                let mut counts = [0usize; crate::categories::WIDTH_BUCKETS];
                for &b in buckets {
                    counts[b] += 1;
                }
                let modal = *counts.iter().max().expect("non-empty");
                fracs.push(modal as f64 / buckets.len() as f64);
            }
            fracs.iter().sum::<f64>() / fracs.len().max(1) as f64
        };
        let mut model = CplantModel::new(5).with_scale(0.3);
        model.width_affinity = 4.0;
        let with = model.generate();
        let without = CplantModel::new(5).with_scale(0.3).generate();
        let cw = concentration(&with);
        let cwo = concentration(&without);
        assert!(
            cw > cwo + 0.03,
            "affinity concentration {cw:.3} not above no-affinity {cwo:.3}"
        );
    }

    #[test]
    fn random_trace_is_structurally_valid() {
        let jobs = random_trace(99, 500, 64, 10_000);
        validate_trace(&jobs).unwrap();
        assert_eq!(jobs.len(), 500);
        assert!(jobs.iter().all(|j| j.nodes >= 1 && j.nodes <= 64));
    }

    #[test]
    fn user_model_sampling_covers_ranks_and_respects_zipf() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = UserModel::new(5, 1.0, 1.0, &mut rng);
        let mut seen = [0u32; 6];
        for _ in 0..5000 {
            let u = model.sample_for_width(8, &mut rng);
            assert!((1..=5).contains(&u));
            seen[u as usize] += 1;
        }
        // Monotone-ish decreasing frequencies (Zipf over ranks).
        assert!(seen[1] > seen[5]);
    }

    #[test]
    fn user_model_affinity_biases_toward_home_users() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut model = UserModel::new(20, 1.0, 50.0, &mut rng);
        // Draw many users for one width; the users whose home bucket is
        // that width should dominate despite Zipf rank.
        let bucket = crate::categories::WidthCategory::of(16).0;
        let residents: Vec<u32> = model
            .home
            .iter()
            .enumerate()
            .filter(|&(_, &h)| h == bucket)
            .map(|(i, _)| i as u32 + 1)
            .collect();
        if residents.is_empty() {
            return; // no resident under this seed; nothing to assert
        }
        let mut resident_draws = 0;
        let n = 4000;
        for _ in 0..n {
            if residents.contains(&model.sample_for_width(16, &mut rng)) {
                resident_draws += 1;
            }
        }
        // With boost 50 and ≥1 resident among 20 users, residents should
        // take well over a third of the draws.
        assert!(
            resident_draws as f64 > 0.33 * n as f64,
            "residents {residents:?} drew only {resident_draws}/{n}"
        );
    }
}
