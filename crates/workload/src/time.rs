//! Simulation time: whole seconds from the start of the trace.
//!
//! The paper's trace spans 231 days (December 1st 2002 to July 14th 2003);
//! everything in this workspace measures time as seconds since the first
//! instant of that window. `u64` seconds comfortably covers the horizon and
//! avoids floating-point drift in the event-driven simulator.

/// A point in time or a duration, in whole seconds.
pub type Time = u64;

/// One minute, in seconds.
pub const MINUTE: Time = 60;
/// One hour, in seconds.
pub const HOUR: Time = 60 * MINUTE;
/// One day, in seconds.
pub const DAY: Time = 24 * HOUR;
/// One week, in seconds.
pub const WEEK: Time = 7 * DAY;

/// Length of the CPlant/Ross study window: 231 days (Dec 01 2002 – Jul 14 2003).
pub const TRACE_DAYS: Time = 231;
/// The study window in seconds.
pub const TRACE_SPAN: Time = TRACE_DAYS * DAY;
/// Number of whole weeks in the study window (Figure 3 plots 33 weeks).
pub const TRACE_WEEKS: usize = 33;

/// Formats a duration as a compact human-readable string (`"3d 4h"`,
/// `"15m"`, `"42s"`), used by report tables.
pub fn format_duration(seconds: Time) -> String {
    if seconds >= DAY {
        let d = seconds / DAY;
        let h = (seconds % DAY) / HOUR;
        if h == 0 {
            format!("{d}d")
        } else {
            format!("{d}d {h}h")
        }
    } else if seconds >= HOUR {
        let h = seconds / HOUR;
        let m = (seconds % HOUR) / MINUTE;
        if m == 0 {
            format!("{h}h")
        } else {
            format!("{h}h {m}m")
        }
    } else if seconds >= MINUTE {
        let m = seconds / MINUTE;
        let s = seconds % MINUTE;
        if s == 0 {
            format!("{m}m")
        } else {
            format!("{m}m {s}s")
        }
    } else {
        format!("{seconds}s")
    }
}

/// Converts seconds to fractional hours (the unit of the paper's Table 2).
pub fn seconds_to_hours(seconds: Time) -> f64 {
    seconds as f64 / HOUR as f64
}

/// Converts fractional hours to whole seconds, rounding to nearest.
pub fn hours_to_seconds(hours: f64) -> Time {
    (hours * HOUR as f64).round() as Time
}

/// The zero-based week index containing time `t`.
pub fn week_of(t: Time) -> usize {
    (t / WEEK) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants_are_consistent() {
        assert_eq!(HOUR, 3600);
        assert_eq!(DAY, 86_400);
        assert_eq!(WEEK, 604_800);
        assert_eq!(TRACE_SPAN, 231 * 86_400);
    }

    #[test]
    fn trace_weeks_covers_the_horizon() {
        // 231 days = 33 weeks exactly.
        assert_eq!(TRACE_DAYS, 33 * 7);
        assert_eq!(TRACE_WEEKS as u64 * WEEK, TRACE_SPAN);
    }

    #[test]
    fn format_duration_covers_all_ranges() {
        assert_eq!(format_duration(42), "42s");
        assert_eq!(format_duration(60), "1m");
        assert_eq!(format_duration(95), "1m 35s");
        assert_eq!(format_duration(3600), "1h");
        assert_eq!(format_duration(3 * HOUR + 30 * MINUTE), "3h 30m");
        assert_eq!(format_duration(2 * DAY), "2d");
        assert_eq!(format_duration(2 * DAY + 5 * HOUR), "2d 5h");
    }

    #[test]
    fn hour_conversions_round_trip() {
        assert_eq!(seconds_to_hours(7200), 2.0);
        assert_eq!(hours_to_seconds(2.0), 7200);
        assert_eq!(hours_to_seconds(0.5), 1800);
        // Round-trips to the nearest second.
        for s in [1u64, 59, 3599, 3601, 86_399] {
            assert_eq!(hours_to_seconds(seconds_to_hours(s)), s);
        }
    }

    #[test]
    fn week_of_boundaries() {
        assert_eq!(week_of(0), 0);
        assert_eq!(week_of(WEEK - 1), 0);
        assert_eq!(week_of(WEEK), 1);
        assert_eq!(week_of(TRACE_SPAN - 1), TRACE_WEEKS - 1);
    }
}
