//! User wall-clock-estimate models.
//!
//! Figures 5–7 of the paper characterize how CPlant users estimated runtimes:
//! estimates are overwhelmingly *over*-estimates (users pad against the kill
//! policy and unknown network contention), the over-estimation factor shrinks
//! for longer jobs (Figure 6) and is unrelated to width (Figure 7), and a few
//! jobs *outlive* their estimate because the custom PBS scheduler only killed
//! a job at its wall-clock limit when another job needed the processors.
//!
//! [`EstimateModel`] reproduces those three properties; it is sampled per-job
//! by the synthetic generator and is independently testable here.

use crate::time::{Time, DAY, HOUR, MINUTE};
use rand::Rng;

/// "Standard" wall-clock request values users round up to (queue-limit style
/// values seen across Parallel Workloads Archive traces).
pub const STANDARD_WCLS: [Time; 14] = [
    5 * MINUTE,
    15 * MINUTE,
    30 * MINUTE,
    HOUR,
    2 * HOUR,
    4 * HOUR,
    8 * HOUR,
    12 * HOUR,
    24 * HOUR,
    48 * HOUR,
    72 * HOUR,
    7 * DAY,
    14 * DAY,
    30 * DAY,
];

/// Parameters of the estimate model.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateModel {
    /// Fraction of jobs whose actual runtime exceeds the estimate
    /// (the below-diagonal points of Figure 5). CPlant's lazy kill policy
    /// made these visible in the trace.
    pub underestimate_fraction: f64,
    /// Fraction of jobs that round their estimate up to a standard value
    /// from [`STANDARD_WCLS`] rather than requesting an exact figure.
    pub round_fraction: f64,
    /// Upper bound on the log10 of the over-estimation factor for a
    /// one-second job. Figure 6 tops out near 1e6 for the shortest jobs.
    pub max_log10_factor: f64,
    /// How quickly the achievable over-estimation factor decays with runtime
    /// (slope in log10-log10 space). Figure 6's upper envelope falls roughly
    /// linearly in log-log: long jobs cannot be over-estimated 10^6× because
    /// queues cap requests.
    pub decay_per_log10_runtime: f64,
}

impl Default for EstimateModel {
    fn default() -> Self {
        EstimateModel {
            underestimate_fraction: 0.04,
            round_fraction: 0.75,
            max_log10_factor: 6.0,
            decay_per_log10_runtime: 0.95,
        }
    }
}

impl EstimateModel {
    /// Draws a wall-clock estimate for a job of the given actual runtime.
    ///
    /// Guarantees `estimate >= 1`. Most draws over-estimate; a small
    /// configured fraction under-estimate (runtime will exceed the returned
    /// limit, exercising the simulator's kill policy).
    pub fn sample(&self, runtime: Time, rng: &mut impl Rng) -> Time {
        debug_assert!(runtime >= 1);
        if rng.gen::<f64>() < self.underestimate_fraction {
            // Under-estimate: the job will outlive its limit. Users were
            // usually close (they expected checkpoint scripts to resubmit),
            // so draw the estimate uniformly in [40%, 100%) of the runtime.
            let frac = rng.gen_range(0.4..1.0);
            return ((runtime as f64 * frac) as Time).max(1);
        }

        // Over-estimate by a log-uniform factor whose ceiling shrinks with
        // runtime (Figure 6's wedge shape). Width plays no role (Figure 7).
        let ceiling = self.max_log10_ceiling(runtime);
        let log_factor = rng.gen_range(0.0..ceiling.max(f64::MIN_POSITIVE));
        let raw = runtime as f64 * 10f64.powf(log_factor);

        if rng.gen::<f64>() < self.round_fraction {
            round_to_standard(raw as Time)
        } else {
            (raw as Time).max(runtime).max(1)
        }
    }

    /// The largest log10 over-estimation factor available to a job of this
    /// runtime (the upper envelope of Figure 6).
    pub fn max_log10_ceiling(&self, runtime: Time) -> f64 {
        let log_rt = (runtime as f64).log10();
        (self.max_log10_factor - self.decay_per_log10_runtime * log_rt)
            .clamp(0.15, self.max_log10_factor)
    }
}

/// Rounds a requested wall-clock limit up to the nearest standard value
/// (saturating at the largest standard value).
pub fn round_to_standard(wcl: Time) -> Time {
    for &std in STANDARD_WCLS.iter() {
        if wcl <= std {
            return std;
        }
    }
    *STANDARD_WCLS.last().expect("table is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn standard_wcls_are_sorted_and_distinct() {
        for pair in STANDARD_WCLS.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn round_to_standard_rounds_up() {
        assert_eq!(round_to_standard(1), 5 * MINUTE);
        assert_eq!(round_to_standard(5 * MINUTE), 5 * MINUTE);
        assert_eq!(round_to_standard(5 * MINUTE + 1), 15 * MINUTE);
        assert_eq!(round_to_standard(25 * HOUR), 48 * HOUR);
        // Saturates at the largest standard value.
        assert_eq!(round_to_standard(90 * DAY), 30 * DAY);
    }

    #[test]
    fn estimates_are_always_positive() {
        let model = EstimateModel::default();
        let mut rng = rng();
        for runtime in [1u64, 10, 900, 3600, 86_400, 400_000] {
            for _ in 0..200 {
                assert!(model.sample(runtime, &mut rng) >= 1);
            }
        }
    }

    #[test]
    fn most_jobs_overestimate_and_a_few_underestimate() {
        let model = EstimateModel::default();
        let mut rng = rng();
        let runtime = 2 * HOUR;
        let n = 5000;
        let under = (0..n)
            .filter(|_| model.sample(runtime, &mut rng) < runtime)
            .count();
        let frac = under as f64 / n as f64;
        // Configured 4%; allow sampling noise.
        assert!(
            (0.02..0.07).contains(&frac),
            "under-estimate fraction {frac} outside expected band"
        );
    }

    #[test]
    fn overestimation_ceiling_shrinks_with_runtime() {
        // Figure 6: short jobs can be over-estimated by up to ~1e6, long jobs
        // far less.
        let model = EstimateModel::default();
        assert!(model.max_log10_ceiling(1) > 5.5);
        assert!(model.max_log10_ceiling(HOUR) < model.max_log10_ceiling(MINUTE));
        assert!(model.max_log10_ceiling(10 * DAY) < 1.0);
        // Never collapses to zero: even very long jobs keep some slack.
        assert!(model.max_log10_ceiling(30 * DAY) >= 0.15);
    }

    #[test]
    fn sampled_factors_respect_the_ceiling_envelope() {
        let model = EstimateModel {
            underestimate_fraction: 0.0,
            round_fraction: 0.0,
            ..Default::default()
        };
        let mut rng = rng();
        for runtime in [60u64, 3600, 86_400] {
            let ceiling = model.max_log10_ceiling(runtime);
            for _ in 0..500 {
                let est = model.sample(runtime, &mut rng);
                let factor = est as f64 / runtime as f64;
                assert!(factor >= 1.0 - 1e-9);
                // Integer truncation can only lower the factor.
                assert!(
                    factor.log10() <= ceiling + 1e-9,
                    "factor {factor} exceeds ceiling for runtime {runtime}"
                );
            }
        }
    }

    #[test]
    fn rounded_estimates_come_from_the_standard_table() {
        let model = EstimateModel {
            underestimate_fraction: 0.0,
            round_fraction: 1.0,
            ..Default::default()
        };
        let mut rng = rng();
        for _ in 0..500 {
            let est = model.sample(HOUR, &mut rng);
            assert!(STANDARD_WCLS.contains(&est), "{est} not a standard WCL");
        }
    }
}
