//! Workload characterization: the statistics behind Figures 3–7.
//!
//! * [`weekly_offered_load`] — the "Offered Load" series of Figure 3 (the
//!   "Actual Utilization" series needs a schedule and lives in
//!   `fairsched-metrics`).
//! * [`runtime_nodes_points`] — the Figure 4 scatter (runtime vs nodes).
//! * [`estimate_points`] — the Figure 5 scatter (runtime vs WCL).
//! * [`overestimation_vs_runtime`] / [`overestimation_vs_nodes`] — Figures
//!   6–7.
//! * [`Summary`] — reusable univariate summary (mean / median / percentiles)
//!   used throughout the experiment harness.

use crate::job::Job;
use crate::time::{Time, WEEK};

/// Offered load per week: processor-hours *submitted* during each week,
/// divided by the machine's weekly capacity. Values above 1.0 are the
/// overload bursts of Figure 3.
pub fn weekly_offered_load(jobs: &[Job], system_nodes: u32, weeks: usize) -> Vec<f64> {
    let capacity_ph = system_nodes as f64 * WEEK as f64 / 3600.0;
    let mut load = vec![0.0; weeks];
    for job in jobs {
        let w = (job.submit / WEEK) as usize;
        if w < weeks {
            load[w] += job.proc_hours() / capacity_ph;
        }
    }
    load
}

/// The Figure 4 scatter: (runtime seconds, nodes) per job.
pub fn runtime_nodes_points(jobs: &[Job]) -> Vec<(Time, u32)> {
    jobs.iter().map(|j| (j.runtime, j.nodes)).collect()
}

/// The Figure 5 scatter: (runtime seconds, wall-clock limit seconds) per job.
pub fn estimate_points(jobs: &[Job]) -> Vec<(Time, Time)> {
    jobs.iter().map(|j| (j.runtime, j.estimate)).collect()
}

/// The Figure 6 scatter: (over-estimation factor, runtime seconds).
pub fn overestimation_vs_runtime(jobs: &[Job]) -> Vec<(f64, Time)> {
    jobs.iter()
        .map(|j| (j.overestimation_factor(), j.runtime))
        .collect()
}

/// The Figure 7 scatter: (over-estimation factor, nodes).
pub fn overestimation_vs_nodes(jobs: &[Job]) -> Vec<(f64, u32)> {
    jobs.iter()
        .map(|j| (j.overestimation_factor(), j.nodes))
        .collect()
}

/// Log-binned histogram: counts of `values` in decade bins
/// `[10^k, 10^(k+1))`. Used to print ASCII renderings of the log-log scatter
/// figures.
pub fn decade_histogram(
    values: impl IntoIterator<Item = f64>,
    decades: std::ops::Range<i32>,
) -> Vec<u64> {
    let mut bins = vec![0u64; decades.len()];
    for v in values {
        if v <= 0.0 {
            continue;
        }
        let d = v.log10().floor() as i32;
        if d >= decades.start && d < decades.end {
            bins[(d - decades.start) as usize] += 1;
        }
    }
    bins
}

/// Univariate summary statistics over `f64` samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
    /// Median (0 for an empty sample).
    pub median: f64,
    /// 90th percentile (0 for an empty sample).
    pub p90: f64,
    /// Population standard deviation (0 for an empty sample).
    pub stddev: f64,
}

impl Summary {
    /// Computes a summary; tolerates the empty sample (all-zero summary).
    pub fn of(values: impl IntoIterator<Item = f64>) -> Summary {
        let mut v: Vec<f64> = values.into_iter().collect();
        if v.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p90: 0.0,
                stddev: 0.0,
            };
        }
        v.sort_by(f64::total_cmp);
        let count = v.len();
        let sum: f64 = v.iter().sum();
        let mean = sum / count as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        Summary {
            count,
            mean,
            min: v[0],
            max: v[count - 1],
            median: percentile_sorted(&v, 0.5),
            p90: percentile_sorted(&v, 0.9),
            stddev: var.sqrt(),
        }
    }
}

/// Percentile of an already-sorted slice via linear interpolation.
/// `q` in `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use crate::time::HOUR;

    fn job_at(id: u32, submit: Time, nodes: u32, runtime: Time) -> Job {
        Job::new(id, 1, 1, submit, nodes, runtime, runtime * 2)
    }

    #[test]
    fn weekly_offered_load_places_proc_hours_in_submit_weeks() {
        // One 100-node 1-week job submitted in week 0 on a 100-node machine
        // = exactly 1.0 offered load in week 0.
        let jobs = vec![job_at(1, 0, 100, WEEK)];
        let load = weekly_offered_load(&jobs, 100, 3);
        assert!((load[0] - 1.0).abs() < 1e-9);
        assert_eq!(load[1], 0.0);
        assert_eq!(load[2], 0.0);
    }

    #[test]
    fn weekly_offered_load_ignores_jobs_past_horizon() {
        let jobs = vec![job_at(1, 10 * WEEK, 10, HOUR)];
        let load = weekly_offered_load(&jobs, 100, 3);
        assert!(load.iter().all(|&l| l == 0.0));
    }

    #[test]
    fn scatter_extractors_are_one_to_one() {
        let jobs = vec![job_at(1, 0, 4, 100), job_at(2, 5, 8, 200)];
        assert_eq!(runtime_nodes_points(&jobs), vec![(100, 4), (200, 8)]);
        assert_eq!(estimate_points(&jobs), vec![(100, 200), (200, 400)]);
        let over = overestimation_vs_runtime(&jobs);
        assert!((over[0].0 - 2.0).abs() < 1e-12);
        assert_eq!(over[0].1, 100);
        let overn = overestimation_vs_nodes(&jobs);
        assert_eq!(overn[1].1, 8);
    }

    #[test]
    fn decade_histogram_bins_by_power_of_ten() {
        let values = vec![1.0, 5.0, 10.0, 99.0, 100.0, 0.5, 0.0, -1.0];
        // decades -1..3 → bins for [0.1,1), [1,10), [10,100), [100,1000)
        let bins = decade_histogram(values, -1..3);
        assert_eq!(bins, vec![1, 2, 2, 1]);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of([1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert!((s.stddev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_handles_empty_sample() {
        let s = Summary::of(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&v, 0.0), 10.0);
        assert_eq!(percentile_sorted(&v, 1.0), 40.0);
        assert!((percentile_sorted(&v, 0.5) - 25.0).abs() < 1e-12);
    }
}
