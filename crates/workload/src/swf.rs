//! Standard Workload Format (SWF) version 2 reader and writer.
//!
//! The paper converted the raw CPlant PBS and `yod` launcher logs into SWF v2
//! for its simulator, and promised the cleaned trace to the Parallel
//! Workloads Archive. This module implements the archive's 18-field format:
//! header comment lines start with `;`, each job is one whitespace-separated
//! line, and `-1` means "unknown".
//!
//! Fields: 1 job number, 2 submit time, 3 wait time, 4 run time, 5 allocated
//! processors, 6 average CPU time, 7 used memory, 8 requested processors,
//! 9 requested time, 10 requested memory, 11 status, 12 user id, 13 group id,
//! 14 executable, 15 queue, 16 partition, 17 preceding job, 18 think time.
//!
//! The default reader is deliberately lenient (the archive's own guidance):
//! rows with non-positive runtimes or processor counts are *skipped and
//! counted*, not fatal — real logs contain them (the gap between the paper's
//! 13 614 raw jobs and Table 1's 13 236 categorized jobs is exactly such
//! cleaning). [`read_swf_strict`] inverts that stance for traces this code
//! wrote itself or curated inputs where any bad row means the file is not
//! what the caller thinks it is: the first offending row fails the read with
//! its line number and reason ([`SwfError::Parse`]).

use crate::job::{GroupId, Job, JobId, JobStatus, UserId};
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

/// Number of data fields per SWF record.
pub const SWF_FIELDS: usize = 18;

/// Outcome of parsing a trace: the clean jobs plus cleaning statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedTrace {
    /// Jobs that passed cleaning, sorted by (submit, id).
    pub jobs: Vec<Job>,
    /// Records skipped because runtime or processor count was non-positive.
    pub skipped_degenerate: usize,
    /// Records skipped because a mandatory field failed to parse.
    pub skipped_malformed: usize,
    /// Header comment lines encountered (preserved verbatim, without `;`).
    pub header: Vec<String>,
}

/// A fatal SWF reading failure. The lenient readers only produce `Io`;
/// the strict readers also fail on the first unusable record.
#[derive(Debug)]
pub enum SwfError {
    /// Underlying reader failed.
    Io(io::Error),
    /// A record was malformed or degenerate (strict mode only).
    Parse {
        /// 1-based line number in the input, counting comments and blanks.
        line_no: usize,
        /// What was wrong with the record.
        reason: String,
    },
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfError::Io(e) => write!(f, "swf i/o error: {e}"),
            SwfError::Parse { line_no, reason } => {
                write!(f, "swf parse error at line {line_no}: {reason}")
            }
        }
    }
}

impl std::error::Error for SwfError {}

impl From<io::Error> for SwfError {
    fn from(e: io::Error) -> Self {
        SwfError::Io(e)
    }
}

/// Reads an SWF v2 trace from any buffered reader, skipping (and counting)
/// malformed and degenerate rows.
pub fn read_swf(reader: impl BufRead) -> Result<ParsedTrace, SwfError> {
    read_swf_impl(reader, false)
}

/// Reads an SWF v2 trace, failing on the first malformed or degenerate
/// record instead of skipping it. A strict parse that succeeds always has
/// `skipped_degenerate == skipped_malformed == 0`.
pub fn read_swf_strict(reader: impl BufRead) -> Result<ParsedTrace, SwfError> {
    read_swf_impl(reader, true)
}

fn read_swf_impl(reader: impl BufRead, strict: bool) -> Result<ParsedTrace, SwfError> {
    let mut jobs = Vec::new();
    let mut skipped_degenerate = 0usize;
    let mut skipped_malformed = 0usize;
    let mut header = Vec::new();

    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix(';') {
            header.push(comment.trim().to_string());
            continue;
        }
        let reason = match parse_record(trimmed) {
            RecordOutcome::Job(job) => {
                jobs.push(job);
                continue;
            }
            RecordOutcome::Degenerate(reason) => {
                skipped_degenerate += 1;
                reason
            }
            RecordOutcome::Malformed(reason) => {
                skipped_malformed += 1;
                reason
            }
        };
        if strict {
            return Err(SwfError::Parse {
                line_no: idx + 1,
                reason: reason.to_string(),
            });
        }
    }

    jobs.sort_by_key(|j| (j.submit, j.id));
    Ok(ParsedTrace {
        jobs,
        skipped_degenerate,
        skipped_malformed,
        header,
    })
}

/// Reads an SWF trace from a string (convenience for tests and examples).
pub fn read_swf_str(text: &str) -> Result<ParsedTrace, SwfError> {
    read_swf(io::BufReader::new(text.as_bytes()))
}

/// Strict-mode variant of [`read_swf_str`].
pub fn read_swf_str_strict(text: &str) -> Result<ParsedTrace, SwfError> {
    read_swf_strict(io::BufReader::new(text.as_bytes()))
}

enum RecordOutcome {
    Job(Job),
    Degenerate(&'static str),
    Malformed(&'static str),
}

fn parse_record(line: &str) -> RecordOutcome {
    let mut fields = [0i64; SWF_FIELDS];
    let mut count = 0;
    for (slot, token) in fields.iter_mut().zip(line.split_whitespace()) {
        match token.parse::<f64>() {
            // SWF permits fractional seconds in some archives; we truncate.
            Ok(v) => *slot = v as i64,
            Err(_) => return RecordOutcome::Malformed("non-numeric field"),
        }
        count += 1;
    }
    if count < 12 {
        // Need at least through the user-id field to build a job.
        return RecordOutcome::Malformed("fewer than 12 fields");
    }

    let id = fields[0];
    let submit = fields[1];
    let runtime = fields[3];
    let alloc_procs = fields[4];
    let req_procs = fields[7];
    let req_time = fields[8];
    let status = fields[10];
    let user = fields[11];
    let group = if count > 12 { fields[12] } else { -1 };

    // Requested processors falls back to allocated (archive convention).
    let nodes = if req_procs > 0 {
        req_procs
    } else {
        alloc_procs
    };
    // Requested time falls back to runtime (perfect estimate) when unknown.
    let estimate = if req_time > 0 { req_time } else { runtime };

    if id < 0 || submit < 0 {
        return RecordOutcome::Malformed("negative job number or submit time");
    }
    if runtime <= 0 || nodes <= 0 || estimate <= 0 {
        return RecordOutcome::Degenerate(
            "non-positive runtime, processor count, or requested time",
        );
    }

    RecordOutcome::Job(Job {
        id: JobId(id as u32),
        user: UserId(user.max(0) as u32),
        group: GroupId(group.max(0) as u32),
        submit: submit as u64,
        nodes: nodes as u32,
        runtime: runtime as u64,
        estimate: estimate as u64,
        status: JobStatus::from_swf_code(status),
    })
}

/// Serializes one job as an SWF record line (no trailing newline).
///
/// Wait time, memory, executable, queue, partition, and dependency fields are
/// written as `-1` (unknown): they are outputs of a *schedule*, not inputs of
/// a workload, and this crate deals in workloads.
pub fn format_record(job: &Job) -> String {
    let mut s = String::with_capacity(96);
    // 1 id, 2 submit, 3 wait, 4 runtime, 5 alloc procs, 6 cpu, 7 mem,
    // 8 req procs, 9 req time, 10 req mem, 11 status, 12 uid, 13 gid,
    // 14 exe, 15 queue, 16 partition, 17 prev job, 18 think time.
    write!(
        s,
        "{} {} -1 {} {} -1 -1 {} {} -1 {} {} {} -1 -1 -1 -1 -1",
        job.id.0,
        job.submit,
        job.runtime,
        job.nodes,
        job.nodes,
        job.estimate,
        job.status.swf_code(),
        job.user.0,
        job.group.0,
    )
    .expect("writing to String cannot fail");
    s
}

/// Writes a full SWF v2 file: a standard header followed by one record per
/// job. `system_nodes` fills the header's `MaxNodes` field.
pub fn write_swf(
    mut writer: impl Write,
    jobs: &[Job],
    system_nodes: u32,
    comment: &str,
) -> io::Result<()> {
    writeln!(writer, "; Version: 2")?;
    writeln!(writer, "; Computer: CPlant/Ross (synthetic reproduction)")?;
    writeln!(writer, "; MaxNodes: {system_nodes}")?;
    writeln!(writer, "; MaxProcs: {system_nodes}")?;
    writeln!(writer, "; Note: {comment}")?;
    for job in jobs {
        writeln!(writer, "{}", format_record(job))?;
    }
    Ok(())
}

/// Serializes a trace to an SWF string (convenience for tests and examples).
pub fn write_swf_string(jobs: &[Job], system_nodes: u32, comment: &str) -> String {
    let mut buf = Vec::new();
    write_swf(&mut buf, jobs, system_nodes, comment).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("SWF output is ASCII")
}

/// Reads an SWF v2 trace from a file.
pub fn read_swf_file(path: impl AsRef<std::path::Path>) -> Result<ParsedTrace, SwfError> {
    let file = std::fs::File::open(path)?;
    read_swf(io::BufReader::new(file))
}

/// Strict-mode variant of [`read_swf_file`]: the first malformed or
/// degenerate record fails the read with its line number.
pub fn read_swf_file_strict(path: impl AsRef<std::path::Path>) -> Result<ParsedTrace, SwfError> {
    let file = std::fs::File::open(path)?;
    read_swf_strict(io::BufReader::new(file))
}

/// Writes a trace to an SWF v2 file (buffered; creates or truncates).
pub fn write_swf_file(
    path: impl AsRef<std::path::Path>,
    jobs: &[Job],
    system_nodes: u32,
    comment: &str,
) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut writer = io::BufWriter::new(file);
    write_swf(&mut writer, jobs, system_nodes, comment)?;
    use std::io::Write as _;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u32, submit: u64, nodes: u32, runtime: u64, estimate: u64) -> Job {
        Job::new(id, 3, 7, submit, nodes, runtime, estimate)
    }

    #[test]
    fn round_trip_preserves_every_field_we_model() {
        let jobs = vec![
            job(1, 0, 4, 100, 900),
            job(2, 50, 128, 86_400, 172_800),
            Job {
                status: JobStatus::Cancelled,
                ..job(3, 60, 1, 10, 5)
            },
        ];
        let text = write_swf_string(&jobs, 1024, "round trip test");
        let parsed = read_swf_str(&text).unwrap();
        assert_eq!(parsed.jobs, jobs);
        assert_eq!(parsed.skipped_degenerate, 0);
        assert_eq!(parsed.skipped_malformed, 0);
        assert!(parsed.header.iter().any(|h| h.starts_with("Version: 2")));
    }

    #[test]
    fn degenerate_rows_are_skipped_and_counted() {
        let text = "\
; Version: 2
1 0 -1 0 4 -1 -1 4 900 -1 1 3 7 -1 -1 -1 -1 -1
2 5 -1 100 0 -1 -1 0 900 -1 1 3 7 -1 -1 -1 -1 -1
3 9 -1 100 4 -1 -1 4 900 -1 1 3 7 -1 -1 -1 -1 -1
";
        let parsed = read_swf_str(text).unwrap();
        assert_eq!(parsed.jobs.len(), 1);
        assert_eq!(parsed.jobs[0].id, JobId(3));
        assert_eq!(parsed.skipped_degenerate, 2);
    }

    #[test]
    fn malformed_rows_are_skipped_and_counted() {
        let text = "\
1 0 -1 100 4 -1 -1 4 900 -1 1 3 7 -1 -1 -1 -1 -1
not a number at all
2 0 -1 100
";
        let parsed = read_swf_str(text).unwrap();
        assert_eq!(parsed.jobs.len(), 1);
        assert_eq!(parsed.skipped_malformed, 2);
    }

    #[test]
    fn strict_mode_fails_on_the_first_bad_record_with_its_line() {
        let text = "\
; Version: 2
1 0 -1 100 4 -1 -1 4 900 -1 1 3 7 -1 -1 -1 -1 -1
2 5 -1 0 4 -1 -1 4 900 -1 1 3 7 -1 -1 -1 -1 -1
garbage
";
        // Lenient: one job, two skips.
        let lenient = read_swf_str(text).unwrap();
        assert_eq!(lenient.jobs.len(), 1);
        assert_eq!(lenient.skipped_degenerate + lenient.skipped_malformed, 2);
        // Strict: error at the degenerate row (line 3), before the garbage.
        match read_swf_str_strict(text).unwrap_err() {
            SwfError::Parse { line_no, reason } => {
                assert_eq!(line_no, 3);
                assert!(reason.contains("non-positive"));
            }
            other => panic!("expected a parse error, got {other:?}"),
        }
    }

    #[test]
    fn strict_mode_accepts_clean_traces_identically() {
        let jobs = vec![job(1, 0, 4, 100, 900), job(2, 7, 16, 500, 3600)];
        let text = write_swf_string(&jobs, 64, "strict round trip");
        let strict = read_swf_str_strict(&text).unwrap();
        assert_eq!(strict, read_swf_str(&text).unwrap());
        assert_eq!(strict.jobs, jobs);
        assert_eq!(strict.skipped_degenerate, 0);
        assert_eq!(strict.skipped_malformed, 0);
    }

    #[test]
    fn parse_errors_render_the_line_number() {
        let err = SwfError::Parse {
            line_no: 41,
            reason: "non-numeric field".into(),
        };
        assert_eq!(
            err.to_string(),
            "swf parse error at line 41: non-numeric field"
        );
    }

    #[test]
    fn requested_fields_fall_back_to_actuals() {
        // req_procs = -1 falls back to allocated; req_time = -1 to runtime.
        let text = "1 0 -1 100 8 -1 -1 -1 -1 -1 1 3 7 -1 -1 -1 -1 -1";
        let parsed = read_swf_str(text).unwrap();
        assert_eq!(parsed.jobs[0].nodes, 8);
        assert_eq!(parsed.jobs[0].estimate, 100);
    }

    #[test]
    fn reader_sorts_by_submit_then_id() {
        let text = "\
5 100 -1 10 1 -1 -1 1 10 -1 1 0 0 -1 -1 -1 -1 -1
2 100 -1 10 1 -1 -1 1 10 -1 1 0 0 -1 -1 -1 -1 -1
9 20 -1 10 1 -1 -1 1 10 -1 1 0 0 -1 -1 -1 -1 -1
";
        let parsed = read_swf_str(text).unwrap();
        let ids: Vec<u32> = parsed.jobs.iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![9, 2, 5]);
        crate::job::validate_trace(&parsed.jobs).unwrap();
    }

    #[test]
    fn fractional_seconds_are_truncated_not_rejected() {
        let text = "1 10.75 -1 99.9 4 -1 -1 4 900 -1 1 3 7 -1 -1 -1 -1 -1";
        let parsed = read_swf_str(text).unwrap();
        assert_eq!(parsed.jobs[0].submit, 10);
        assert_eq!(parsed.jobs[0].runtime, 99);
    }

    #[test]
    fn status_codes_survive_the_round_trip() {
        for status in [
            JobStatus::Completed,
            JobStatus::Failed,
            JobStatus::Cancelled,
        ] {
            let j = Job {
                status,
                ..job(1, 0, 2, 50, 60)
            };
            let parsed = read_swf_str(&format_record(&j)).unwrap();
            assert_eq!(parsed.jobs[0].status, status);
        }
    }

    #[test]
    fn file_round_trip() {
        let jobs = vec![job(1, 0, 4, 100, 900), job(2, 7, 16, 500, 3600)];
        let dir = std::env::temp_dir().join("fairsched-swf-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.swf");
        write_swf_file(&path, &jobs, 64, "file round trip").unwrap();
        let parsed = read_swf_file(&path).unwrap();
        assert_eq!(parsed.jobs, jobs);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reading_a_missing_file_is_an_io_error() {
        let err = read_swf_file("/nonexistent/fairsched/trace.swf").unwrap_err();
        assert!(matches!(err, SwfError::Io(_)));
    }

    #[test]
    fn header_lines_are_preserved() {
        let text = "; UnixStartTime: 1038700000\n;   Note:   hello \n1 0 -1 10 1 -1 -1 1 10 -1 1 0 0 -1 -1 -1 -1 -1\n";
        let parsed = read_swf_str(text).unwrap();
        assert_eq!(parsed.header[0], "UnixStartTime: 1038700000");
        assert_eq!(parsed.header[1], "Note:   hello");
    }
}
