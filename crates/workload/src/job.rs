//! The job record: the unit of work every scheduler in this workspace packs.
//!
//! A job is the classic 2-D rectangle of the parallel-scheduling literature:
//! its width is the number of nodes requested and its length is its runtime.
//! Two lengths matter: the *actual* runtime (known only in hindsight, used by
//! the simulator to generate completion events) and the user's wall-clock
//! *estimate* (the only length a non-clairvoyant scheduler may look at).

use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a job within a trace. Ids are dense and assigned in submit
/// order by the generator, but schedulers must not rely on that: runtime
/// limits (§5.1 of the paper) split jobs into chunks with fresh ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u32);

/// Identifies a user. The fairshare queuing priority accumulates decayed
/// processor-seconds per user, so user identity is load-bearing for
/// scheduling, not just bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// Identifies a group (carried through from SWF; not used by any policy in
/// the paper, but preserved so traces round-trip).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u32);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Completion status, following SWF conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobStatus {
    /// Ran to its natural end.
    Completed,
    /// Failed/aborted on its own.
    Failed,
    /// Killed by the scheduler at its wall-clock limit.
    Cancelled,
}

impl JobStatus {
    /// The SWF `status` field value.
    pub fn swf_code(self) -> i64 {
        match self {
            JobStatus::Completed => 1,
            JobStatus::Failed => 0,
            JobStatus::Cancelled => 5,
        }
    }

    /// Parses an SWF `status` field. Unknown codes map to `Completed`, the
    /// archive's recommended lenient reading.
    pub fn from_swf_code(code: i64) -> Self {
        match code {
            0 => JobStatus::Failed,
            5 => JobStatus::Cancelled,
            _ => JobStatus::Completed,
        }
    }
}

/// A job as submitted: the immutable description the scheduler sees.
///
/// Invariants (enforced by [`Job::validate`], checked by property tests):
/// * `nodes >= 1`
/// * `runtime >= 1` (zero-length jobs are dropped during trace cleaning,
///   matching the paper's preprocessing of the PBS/yod logs)
/// * `estimate >= 1`
///
/// Note that `runtime > estimate` is *allowed*: the CPlant PBS scheduler
/// killed jobs at their wall-clock limit only when another job needed the
/// processors, so the trace (Figure 5) contains jobs that outlived their
/// estimates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Job {
    /// Trace-unique identity.
    pub id: JobId,
    /// Submitting user (drives the fairshare priority).
    pub user: UserId,
    /// Submitting group.
    pub group: GroupId,
    /// Submission (queue-entry) time, seconds from trace start.
    pub submit: Time,
    /// Number of nodes requested; CPlant allocated whole nodes.
    pub nodes: u32,
    /// Actual runtime in seconds, known only in hindsight.
    pub runtime: Time,
    /// User wall-clock limit (estimate) in seconds.
    pub estimate: Time,
    /// How the job ended in the source trace.
    pub status: JobStatus,
}

impl Job {
    /// Creates a job with `Completed` status; the common constructor for
    /// tests and generators.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: u32,
        user: u32,
        group: u32,
        submit: Time,
        nodes: u32,
        runtime: Time,
        estimate: Time,
    ) -> Self {
        Job {
            id: JobId(id),
            user: UserId(user),
            group: GroupId(group),
            submit,
            nodes,
            runtime,
            estimate,
            status: JobStatus::Completed,
        }
    }

    /// Processor-seconds this job consumes (`nodes × runtime`).
    pub fn proc_seconds(&self) -> u64 {
        self.nodes as u64 * self.runtime
    }

    /// Processor-hours (the unit of the paper's Table 2).
    pub fn proc_hours(&self) -> f64 {
        self.proc_seconds() as f64 / 3600.0
    }

    /// Over-estimation factor `estimate / runtime` (Figures 6–7). Greater
    /// than 1 for over-estimated jobs, below 1 for jobs that outlived their
    /// wall-clock limit.
    pub fn overestimation_factor(&self) -> f64 {
        self.estimate as f64 / self.runtime as f64
    }

    /// Checks the structural invariants; returns the first violation.
    pub fn validate(&self) -> Result<(), JobInvariantViolation> {
        if self.nodes == 0 {
            return Err(JobInvariantViolation::ZeroNodes(self.id));
        }
        if self.runtime == 0 {
            return Err(JobInvariantViolation::ZeroRuntime(self.id));
        }
        if self.estimate == 0 {
            return Err(JobInvariantViolation::ZeroEstimate(self.id));
        }
        Ok(())
    }
}

/// A violated [`Job`] invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobInvariantViolation {
    /// `nodes == 0`.
    ZeroNodes(JobId),
    /// `runtime == 0`.
    ZeroRuntime(JobId),
    /// `estimate == 0`.
    ZeroEstimate(JobId),
}

impl fmt::Display for JobInvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobInvariantViolation::ZeroNodes(id) => write!(f, "{id}: zero nodes"),
            JobInvariantViolation::ZeroRuntime(id) => write!(f, "{id}: zero runtime"),
            JobInvariantViolation::ZeroEstimate(id) => write!(f, "{id}: zero estimate"),
        }
    }
}

impl std::error::Error for JobInvariantViolation {}

/// Validates a whole trace and checks it is sorted by submit time (ties by
/// id), the order every consumer in the workspace assumes.
pub fn validate_trace(jobs: &[Job]) -> Result<(), TraceError> {
    for job in jobs {
        job.validate().map_err(TraceError::Job)?;
    }
    for pair in jobs.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if (b.submit, b.id) < (a.submit, a.id) {
            return Err(TraceError::OutOfOrder {
                before: a.id,
                after: b.id,
            });
        }
        if a.id == b.id {
            return Err(TraceError::DuplicateId(a.id));
        }
    }
    Ok(())
}

/// A trace-level validation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// A job violates a per-job invariant.
    Job(JobInvariantViolation),
    /// Jobs are not sorted by (submit, id).
    OutOfOrder {
        /// The job that appears first in the trace.
        before: JobId,
        /// The job that appears after it despite sorting earlier.
        after: JobId,
    },
    /// Two adjacent jobs share an id.
    DuplicateId(JobId),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Job(v) => write!(f, "invalid job: {v}"),
            TraceError::OutOfOrder { before, after } => {
                write!(f, "trace out of order: {after} sorts before {before}")
            }
            TraceError::DuplicateId(id) => write!(f, "duplicate job id {id}"),
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u32, submit: Time) -> Job {
        Job::new(id, 1, 1, submit, 4, 100, 200)
    }

    #[test]
    fn proc_seconds_and_hours() {
        let j = Job::new(1, 1, 1, 0, 16, 7200, 7200);
        assert_eq!(j.proc_seconds(), 16 * 7200);
        assert!((j.proc_hours() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn overestimation_factor_both_sides_of_one() {
        let over = Job::new(1, 1, 1, 0, 1, 100, 1000);
        assert!((over.overestimation_factor() - 10.0).abs() < 1e-12);
        let under = Job::new(2, 1, 1, 0, 1, 1000, 100);
        assert!((under.overestimation_factor() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_degenerate_jobs() {
        let mut j = job(1, 0);
        j.nodes = 0;
        assert_eq!(
            j.validate(),
            Err(JobInvariantViolation::ZeroNodes(JobId(1)))
        );
        let mut j = job(2, 0);
        j.runtime = 0;
        assert_eq!(
            j.validate(),
            Err(JobInvariantViolation::ZeroRuntime(JobId(2)))
        );
        let mut j = job(3, 0);
        j.estimate = 0;
        assert_eq!(
            j.validate(),
            Err(JobInvariantViolation::ZeroEstimate(JobId(3)))
        );
        assert!(job(4, 0).validate().is_ok());
    }

    #[test]
    fn runtime_longer_than_estimate_is_legal() {
        // The CPlant kill policy lets jobs outlive their WCL when no one
        // needs the nodes; such jobs must validate.
        let j = Job::new(1, 1, 1, 0, 8, 5000, 3600);
        assert!(j.validate().is_ok());
    }

    #[test]
    fn validate_trace_accepts_sorted_and_rejects_unsorted() {
        let sorted = vec![job(1, 0), job(2, 10), job(3, 10)];
        assert!(validate_trace(&sorted).is_ok());

        let unsorted = vec![job(1, 10), job(2, 0)];
        assert_eq!(
            validate_trace(&unsorted),
            Err(TraceError::OutOfOrder {
                before: JobId(1),
                after: JobId(2)
            })
        );
    }

    #[test]
    fn validate_trace_rejects_duplicate_adjacent_ids() {
        let dup = vec![job(7, 5), job(7, 5)];
        assert_eq!(validate_trace(&dup), Err(TraceError::DuplicateId(JobId(7))));
    }

    #[test]
    fn status_swf_codes_round_trip() {
        for s in [
            JobStatus::Completed,
            JobStatus::Failed,
            JobStatus::Cancelled,
        ] {
            assert_eq!(JobStatus::from_swf_code(s.swf_code()), s);
        }
        // Unknown codes read as Completed.
        assert_eq!(JobStatus::from_swf_code(-1), JobStatus::Completed);
    }

    #[test]
    fn display_impls_are_compact() {
        assert_eq!(JobId(3).to_string(), "j3");
        assert_eq!(UserId(4).to_string(), "u4");
        assert_eq!(GroupId(5).to_string(), "g5");
    }
}
