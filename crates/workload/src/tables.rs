//! The paper's published Table 1 (job counts) and Table 2 (processor-hours)
//! as data, plus the functions that recompute both matrices from any trace.
//!
//! These constants are the calibration target of the synthetic generator and
//! the ground truth the `table1_job_counts` / `table2_proc_hours` experiment
//! binaries compare against.

use crate::categories::{CategoryMatrix, LengthCategory, WidthCategory};
use crate::job::Job;

/// Table 1 of the paper: number of jobs in each width × length category of
/// the CPlant/Ross trace (Dec 01 2002 – Jul 14 2003).
///
/// Rows are width buckets (1 node … 513+), columns are length buckets
/// (0–15 min … 2+ days). The cells sum to 13 236; the paper's prose counts
/// 13 614 jobs in the raw trace — the difference is jobs dropped during the
/// authors' trace cleaning (e.g. zero-length records), which the table
/// excludes.
pub fn table1_job_counts() -> CategoryMatrix<u64> {
    CategoryMatrix::from_rows([
        [681, 141, 44, 7, 7, 3, 6, 16],
        [458, 80, 8, 0, 2, 0, 1, 0],
        [672, 440, 273, 55, 26, 3, 5, 5],
        [832, 238, 700, 155, 142, 90, 76, 91],
        [1032, 131, 347, 206, 260, 141, 205, 160],
        [917, 608, 113, 72, 67, 53, 116, 160],
        [879, 130, 134, 70, 79, 48, 130, 178],
        [494, 72, 78, 31, 49, 24, 53, 76],
        [447, 127, 9, 5, 12, 1, 3, 10],
        [147, 24, 6, 3, 1, 0, 0, 1],
        [51, 18, 1, 0, 0, 0, 0, 0],
    ])
}

/// Total number of jobs in Table 1.
pub const TABLE1_TOTAL_JOBS: u64 = 13_236;

/// Number of jobs the paper's prose reports in the raw trace before cleaning.
pub const RAW_TRACE_JOBS: u64 = 13_614;

/// Table 2 of the paper: processor-hours in each width × length category.
///
/// Two cells are mutually inconsistent with Table 1 in the published report
/// (the 513+ row has 1 job in 1–4 h but 0 proc-hours, and 0 jobs in 4–8 h but
/// 3 183 proc-hours — almost certainly a column slip in the original). The
/// generator treats any cell with a zero on either side as "no calibration
/// target" and falls back to mid-bucket runtimes.
pub fn table2_proc_hours() -> CategoryMatrix<f64> {
    CategoryMatrix::from_rows([
        [14., 61., 76., 42., 70., 62., 259., 2883.],
        [32., 70., 21., 0., 53., 0., 68., 0.],
        [103., 1197., 2210., 1272., 1030., 213., 614., 1310.],
        [281., 1101., 10263., 6582., 12107., 14118., 18287., 92549.],
        [
            522., 1102., 12522., 18175., 45859., 42072., 105884., 207496.,
        ],
        [968., 6870., 6630., 11008., 22031., 28232., 109166., 363944.],
        [
            1775., 2895., 15252., 20429., 48457., 48493., 251748., 986649.,
        ],
        [
            1876., 4149., 19125., 17333., 53098., 48296., 179321., 796517.,
        ],
        [3273., 12395., 4219., 4322., 27041., 5451., 19030., 183949.],
        [3719., 4723., 5027., 6850., 3888., 0., 0., 30761.],
        [2692., 9503., 0., 3183., 0., 0., 0., 0.],
    ])
}

/// Recomputes Table 1 from a trace: jobs per width × length category.
pub fn job_counts(jobs: &[Job]) -> CategoryMatrix<u64> {
    let mut m = CategoryMatrix::new();
    for job in jobs {
        *m.get_mut(
            WidthCategory::of(job.nodes),
            LengthCategory::of(job.runtime),
        ) += 1;
    }
    m
}

/// Recomputes Table 2 from a trace: processor-hours per category.
pub fn proc_hours(jobs: &[Job]) -> CategoryMatrix<f64> {
    let mut m = CategoryMatrix::new();
    for job in jobs {
        *m.get_mut(
            WidthCategory::of(job.nodes),
            LengthCategory::of(job.runtime),
        ) += job.proc_hours();
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;

    #[test]
    fn table1_sums_to_published_total() {
        assert_eq!(table1_job_counts().total(), TABLE1_TOTAL_JOBS);
    }

    #[test]
    fn table1_spot_checks_against_the_paper() {
        let t = table1_job_counts();
        // "681" single-node 0-15 min jobs.
        assert_eq!(*t.get(WidthCategory(0), LengthCategory(0)), 681);
        // "1032" 9-16 node 0-15 min jobs.
        assert_eq!(*t.get(WidthCategory(4), LengthCategory(0)), 1032);
        // "178" 33-64 node 2+ day jobs.
        assert_eq!(*t.get(WidthCategory(6), LengthCategory(7)), 178);
        // 513+ row has no jobs past 1-4 hrs.
        for l in 3..8 {
            assert_eq!(*t.get(WidthCategory(10), LengthCategory(l)), 0);
        }
    }

    #[test]
    fn table2_spot_checks_against_the_paper() {
        let t = table2_proc_hours();
        assert_eq!(*t.get(WidthCategory(0), LengthCategory(0)), 14.0);
        assert_eq!(*t.get(WidthCategory(6), LengthCategory(7)), 986_649.0);
        assert_eq!(*t.get(WidthCategory(9), LengthCategory(7)), 30_761.0);
    }

    #[test]
    fn table2_total_is_about_four_million_proc_hours() {
        // Sanity bound used when sizing the simulated machine: the whole
        // 231-day workload is ~3.9M processor-hours.
        let total = table2_proc_hours().total();
        assert!(
            (3.5e6..4.5e6).contains(&total),
            "unexpected Table 2 total: {total}"
        );
    }

    #[test]
    fn long_wide_jobs_dominate_proc_hours_but_not_counts() {
        // The paper's observation motivating the fairness study: wide and
        // long jobs are few in number but most of the consumed cycles.
        let counts = table1_job_counts();
        let hours = table2_proc_hours();
        let long_jobs: u64 = (0..11)
            .map(|w| *counts.get(WidthCategory(w), LengthCategory(7)))
            .sum();
        let long_hours: f64 = (0..11)
            .map(|w| *hours.get(WidthCategory(w), LengthCategory(7)))
            .sum();
        assert!((long_jobs as f64) < 0.06 * TABLE1_TOTAL_JOBS as f64);
        assert!(long_hours > 0.6 * hours.total());
    }

    #[test]
    fn recomputed_counts_and_hours_agree_with_hand_built_trace() {
        let jobs = vec![
            Job::new(1, 1, 1, 0, 1, 600, 900),            // 1 node, 0-15 min
            Job::new(2, 1, 1, 10, 16, 7200, 7200),        // 9-16 nodes, 1-4 hrs
            Job::new(3, 2, 1, 20, 16, 7200, 14400),       // same cell
            Job::new(4, 2, 1, 30, 600, 200_000, 250_000), // 513+, 2+ days
        ];
        let c = job_counts(&jobs);
        assert_eq!(*c.get(WidthCategory(0), LengthCategory(0)), 1);
        assert_eq!(*c.get(WidthCategory(4), LengthCategory(2)), 2);
        assert_eq!(*c.get(WidthCategory(10), LengthCategory(7)), 1);
        assert_eq!(c.total(), 4);

        let h = proc_hours(&jobs);
        assert!((h.get(WidthCategory(0), LengthCategory(0)) - 600.0 / 3600.0).abs() < 1e-9);
        assert!((h.get(WidthCategory(4), LengthCategory(2)) - 2.0 * 16.0 * 2.0).abs() < 1e-9);
        let expect = 600.0 * 200_000.0 / 3600.0;
        assert!((h.get(WidthCategory(10), LengthCategory(7)) - expect).abs() < 1e-6);
    }
}
