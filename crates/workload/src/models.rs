//! A second, independent workload model for cross-validation.
//!
//! The CPlant generator ([`crate::synthetic::CplantModel`]) is calibrated to
//! one site's published tables; conclusions drawn on it alone could in
//! principle be artifacts of that calibration. [`LublinModel`] is a
//! simplified implementation of the classic Lublin–Feitelson workload model
//! family — daily-cycle arrivals, a serial/parallel width split with
//! power-of-two bias, hyper-exponential runtimes — sharing *nothing* with
//! the CPlant tables. The cross-workload integration test re-checks the
//! paper's headline conclusions on it.

use crate::estimate::EstimateModel;
use crate::job::{GroupId, Job, JobId, JobStatus, UserId};
use crate::time::{Time, HOUR};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Simplified Lublin–Feitelson-style generator.
#[derive(Debug, Clone)]
pub struct LublinModel {
    /// PRNG seed; equal seeds give byte-identical traces.
    pub seed: u64,
    /// Number of jobs to generate.
    pub jobs: usize,
    /// Machine size (caps widths).
    pub nodes: u32,
    /// Mean inter-arrival time at the daily peak, seconds.
    pub peak_interarrival: Time,
    /// Probability a job is serial (1 node).
    pub serial_fraction: f64,
    /// Means of the two runtime branches (short, long), seconds.
    pub runtime_means: (f64, f64),
    /// Probability of the short runtime branch.
    pub short_fraction: f64,
    /// User population size (Zipf-1.0 activity).
    pub users: u32,
    /// Wall-clock-estimate model.
    pub estimate: EstimateModel,
}

impl LublinModel {
    /// A model sized to produce moderate contention on `nodes`.
    pub fn new(seed: u64, jobs: usize, nodes: u32) -> Self {
        LublinModel {
            seed,
            jobs,
            nodes,
            peak_interarrival: 15 * 60,
            serial_fraction: 0.25,
            runtime_means: (900.0, 30_000.0),
            short_fraction: 0.6,
            users: 50,
            estimate: EstimateModel::default(),
        }
    }

    /// Generates the trace, sorted by submit time with sequential ids.
    pub fn generate(&self) -> Vec<Job> {
        assert!(self.jobs > 0 && self.nodes >= 1 && self.users >= 1);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x4c75_626c_696e);
        let mut t: Time = 0;
        let mut jobs = Vec::with_capacity(self.jobs);
        for i in 0..self.jobs {
            t += self.sample_gap(t, &mut rng);
            let nodes = self.sample_width(&mut rng);
            let runtime = self.sample_runtime(&mut rng);
            let user = sample_zipf(self.users, &mut rng);
            jobs.push(Job {
                id: JobId(i as u32 + 1),
                user: UserId(user),
                group: GroupId(user % 8),
                submit: t,
                nodes,
                runtime,
                estimate: self.estimate.sample(runtime, &mut rng),
                status: JobStatus::Completed,
            });
        }
        jobs
    }

    /// Exponential inter-arrival gap stretched by the daily cycle: nights
    /// are ~4× quieter than the mid-day peak.
    fn sample_gap(&self, now: Time, rng: &mut ChaCha8Rng) -> Time {
        let hour = (now / HOUR) % 24;
        let slowdown = match hour {
            8..=17 => 1.0,
            6..=7 | 18..=21 => 2.0,
            _ => 4.0,
        };
        let mean = self.peak_interarrival as f64 * slowdown;
        (exponential(mean, rng) as Time).max(1)
    }

    /// Serial with probability `serial_fraction`; otherwise a log-uniform
    /// width in `[2, nodes]`, snapped to the floor power of two 75% of the
    /// time (the classic power-of-two bias).
    fn sample_width(&self, rng: &mut ChaCha8Rng) -> u32 {
        if self.nodes == 1 || rng.gen::<f64>() < self.serial_fraction {
            return 1;
        }
        let lo = 2f64.ln();
        let hi = (self.nodes as f64).ln();
        let raw = rng.gen_range(lo..=hi).exp();
        let width = if rng.gen::<f64>() < 0.75 {
            let pow = 2f64.powf(raw.log2().floor());
            pow as u32
        } else {
            raw as u32
        };
        width.clamp(2, self.nodes)
    }

    /// Two-branch hyper-exponential runtime, floored at 1 s.
    fn sample_runtime(&self, rng: &mut ChaCha8Rng) -> Time {
        let mean = if rng.gen::<f64>() < self.short_fraction {
            self.runtime_means.0
        } else {
            self.runtime_means.1
        };
        (exponential(mean, rng) as Time).max(1)
    }
}

/// Exponential sample with the given mean, via inverse CDF.
fn exponential(mean: f64, rng: &mut ChaCha8Rng) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Zipf(1.0) over `1..=n` by direct inverse of the harmonic CDF (small `n`).
fn sample_zipf(n: u32, rng: &mut ChaCha8Rng) -> u32 {
    let harmonic: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
    let mut pick = rng.gen_range(0.0..harmonic);
    for k in 1..=n {
        let w = 1.0 / k as f64;
        if pick < w {
            return k;
        }
        pick -= w;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::validate_trace;

    #[test]
    fn generation_is_deterministic_and_valid() {
        let a = LublinModel::new(5, 500, 64).generate();
        let b = LublinModel::new(5, 500, 64).generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        validate_trace(&a).unwrap();
        assert_ne!(a, LublinModel::new(6, 500, 64).generate());
    }

    #[test]
    fn widths_respect_the_machine_and_show_the_serial_split() {
        let jobs = LublinModel::new(7, 4000, 128).generate();
        assert!(jobs.iter().all(|j| j.nodes >= 1 && j.nodes <= 128));
        let serial = jobs.iter().filter(|j| j.nodes == 1).count() as f64 / jobs.len() as f64;
        assert!((0.20..0.32).contains(&serial), "serial fraction {serial}");
        // Power-of-two bias: among parallel jobs, powers of two dominate.
        let parallel: Vec<&Job> = jobs.iter().filter(|j| j.nodes > 1).collect();
        let pow2 = parallel
            .iter()
            .filter(|j| j.nodes.is_power_of_two())
            .count() as f64
            / parallel.len() as f64;
        assert!(pow2 > 0.6, "power-of-two fraction {pow2}");
    }

    #[test]
    fn runtimes_are_hyper_exponential_ish() {
        let m = LublinModel::new(9, 6000, 64);
        let jobs = m.generate();
        let mean: f64 = jobs.iter().map(|j| j.runtime as f64).sum::<f64>() / jobs.len() as f64;
        let expected =
            m.short_fraction * m.runtime_means.0 + (1.0 - m.short_fraction) * m.runtime_means.1;
        assert!(
            (mean / expected - 1.0).abs() < 0.15,
            "mean runtime {mean} vs expected {expected}"
        );
        // Heavy tail: some jobs far above the mean.
        assert!(jobs.iter().any(|j| j.runtime as f64 > 4.0 * expected));
    }

    #[test]
    fn arrivals_follow_a_daily_cycle() {
        let jobs = LublinModel::new(11, 8000, 64).generate();
        let mut day = 0usize;
        let mut night = 0usize;
        for j in &jobs {
            match (j.submit / HOUR) % 24 {
                8..=17 => day += 1,
                22..=23 | 0..=5 => night += 1,
                _ => {}
            }
        }
        // 10 day hours vs 8 night hours, but day rate is 4× night rate.
        assert!(
            day as f64 > 2.0 * night as f64,
            "day {day} vs night {night} arrivals"
        );
    }

    #[test]
    fn exponential_sampler_has_the_right_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(100.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 3.0, "sampled mean {mean}");
    }

    #[test]
    fn zipf_sampler_ranks_decrease() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = [0u32; 11];
        for _ in 0..20_000 {
            counts[sample_zipf(10, &mut rng) as usize] += 1;
        }
        assert!(counts[1] > counts[5]);
        assert!(counts[5] > counts[10]);
    }
}
