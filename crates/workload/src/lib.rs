//! # fairsched-workload
//!
//! Job model, trace I/O, and workload synthesis for the CPlant/Ross fairness
//! case study (Leung, Sabin & Sadayappan, SAND2008-1310 / ICPP 2010).
//!
//! This crate is the bottom-most substrate of the `fairsched` workspace. It
//! provides:
//!
//! * [`job`] — the [`job::Job`] record (submit time, width, actual
//!   runtime, user wall-clock estimate, user/group ids) that every other
//!   crate consumes;
//! * [`swf`] — a reader/writer for the Standard Workload Format v2 used by
//!   the Parallel Workloads Archive (the format the paper converted the raw
//!   PBS + `yod` logs into);
//! * [`categories`] — the paper's 11 width × 8 length job categories
//!   (Tables 1 and 2);
//! * [`tables`] — the published Table 1 (job counts) and Table 2
//!   (processor-hours) as data, plus functions that recompute the same
//!   matrices from any trace;
//! * [`synthetic`] — a seeded generator producing a CPlant/Ross-like trace
//!   whose category marginals match Tables 1–2 and whose arrival process and
//!   estimate inaccuracy match Figures 3 and 5–7 (the real trace was never
//!   fully released, so the reproduction runs on this synthetic equivalent);
//! * [`stats`] — workload characterization: weekly offered load,
//!   over-estimation factors, and the scatter series behind Figures 4–7;
//! * [`estimate`] — user wall-clock-estimate models (rounding to "standard"
//!   request values, over-estimation factor sampling);
//! * [`models`] — an independent Lublin–Feitelson-style generator used to
//!   cross-validate conclusions drawn on the CPlant-calibrated workload.
//!
//! All times are in whole seconds ([`Time`]) measured from the start of the
//! trace; widths are node counts.

pub mod categories;
pub mod estimate;
pub mod job;
pub mod models;
pub mod stats;
pub mod swf;
pub mod synthetic;
pub mod tables;
pub mod time;

pub use categories::{CategoryMatrix, LengthCategory, WidthCategory};
pub use job::{GroupId, Job, JobId, UserId};
pub use models::LublinModel;
pub use synthetic::CplantModel;
pub use time::{Time, DAY, HOUR, MINUTE, WEEK};
