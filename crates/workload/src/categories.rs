//! The paper's job categories: 11 width buckets × 8 length buckets.
//!
//! Tables 1 and 2 and the by-width breakdowns of Figures 10, 12, 16, and 18
//! all use the same bucketing. Width buckets follow the node counts users
//! actually request (powers of two and squares); length buckets range from
//! quarter-hour jobs to multi-day runs.

use crate::time::{Time, DAY, HOUR, MINUTE};
use serde::{Deserialize, Serialize};

/// The 11 width (node-count) buckets of Tables 1–2: 1, 2, 3–4, 5–8, 9–16,
/// 17–32, 33–64, 65–128, 129–256, 257–512, 513+.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WidthCategory(pub usize);

/// The 8 length (runtime) buckets of Tables 1–2: 0–15 min, 15–60 min, 1–4 h,
/// 4–8 h, 8–16 h, 16–24 h, 1–2 days, 2+ days.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LengthCategory(pub usize);

/// Number of width buckets.
pub const WIDTH_BUCKETS: usize = 11;
/// Number of length buckets.
pub const LENGTH_BUCKETS: usize = 8;

/// Inclusive node-count bounds of each width bucket. The final bucket is
/// open-ended; its upper bound here is a generous cap used by the synthetic
/// generator (no CPlant job exceeded the machine).
pub const WIDTH_BOUNDS: [(u32, u32); WIDTH_BUCKETS] = [
    (1, 1),
    (2, 2),
    (3, 4),
    (5, 8),
    (9, 16),
    (17, 32),
    (33, 64),
    (65, 128),
    (129, 256),
    (257, 512),
    (513, 1024),
];

/// Half-open runtime bounds `[lo, hi)` of each length bucket, in seconds.
/// The final bucket is open-ended; 30 days is the generator's cap.
pub const LENGTH_BOUNDS: [(Time, Time); LENGTH_BUCKETS] = [
    (1, 15 * MINUTE),
    (15 * MINUTE, 60 * MINUTE),
    (HOUR, 4 * HOUR),
    (4 * HOUR, 8 * HOUR),
    (8 * HOUR, 16 * HOUR),
    (16 * HOUR, 24 * HOUR),
    (DAY, 2 * DAY),
    (2 * DAY, 30 * DAY),
];

/// Row labels as printed in the paper's tables and by-width figures.
pub const WIDTH_LABELS: [&str; WIDTH_BUCKETS] = [
    "1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65-128", "129-256", "257-512", "513+",
];

/// Column labels as printed in the paper's tables.
pub const LENGTH_LABELS: [&str; LENGTH_BUCKETS] = [
    "0-15 mins",
    "15-60 mins",
    "1-4 hrs",
    "4-8 hrs",
    "8-16 hrs",
    "16-24 hrs",
    "1-2 days",
    "2+ days",
];

impl WidthCategory {
    /// The bucket containing a node count.
    pub fn of(nodes: u32) -> Self {
        debug_assert!(nodes >= 1, "jobs have at least one node");
        let idx = WIDTH_BOUNDS
            .iter()
            .position(|&(lo, hi)| nodes >= lo && nodes <= hi)
            .unwrap_or(WIDTH_BUCKETS - 1);
        WidthCategory(idx)
    }

    /// Inclusive node bounds of this bucket.
    pub fn bounds(self) -> (u32, u32) {
        WIDTH_BOUNDS[self.0]
    }

    /// The label the paper prints for this bucket.
    pub fn label(self) -> &'static str {
        WIDTH_LABELS[self.0]
    }

    /// All buckets, narrowest first.
    pub fn all() -> impl Iterator<Item = WidthCategory> {
        (0..WIDTH_BUCKETS).map(WidthCategory)
    }
}

impl LengthCategory {
    /// The bucket containing a runtime in seconds.
    pub fn of(runtime: Time) -> Self {
        debug_assert!(runtime >= 1, "jobs have positive runtime");
        let idx = LENGTH_BOUNDS
            .iter()
            .position(|&(lo, hi)| runtime >= lo && runtime < hi)
            .unwrap_or(LENGTH_BUCKETS - 1);
        LengthCategory(idx)
    }

    /// Half-open runtime bounds `[lo, hi)` of this bucket, in seconds.
    pub fn bounds(self) -> (Time, Time) {
        LENGTH_BOUNDS[self.0]
    }

    /// The label the paper prints for this bucket.
    pub fn label(self) -> &'static str {
        LENGTH_LABELS[self.0]
    }

    /// All buckets, shortest first.
    pub fn all() -> impl Iterator<Item = LengthCategory> {
        (0..LENGTH_BUCKETS).map(LengthCategory)
    }
}

/// A dense 11 × 8 grid indexed by (width bucket, length bucket) — the shape
/// of Tables 1 and 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryMatrix<T> {
    cells: Vec<T>,
}

impl<T: Clone + Default> CategoryMatrix<T> {
    /// An all-default matrix.
    pub fn new() -> Self {
        CategoryMatrix {
            cells: vec![T::default(); WIDTH_BUCKETS * LENGTH_BUCKETS],
        }
    }
}

impl<T: Clone + Default> Default for CategoryMatrix<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CategoryMatrix<T> {
    /// Builds a matrix from a row-major `[[T; 8]; 11]` literal (the layout
    /// the paper's tables are transcribed in).
    pub fn from_rows(rows: [[T; LENGTH_BUCKETS]; WIDTH_BUCKETS]) -> Self {
        CategoryMatrix {
            cells: rows.into_iter().flatten().collect(),
        }
    }

    /// Immutable cell access.
    pub fn get(&self, w: WidthCategory, l: LengthCategory) -> &T {
        &self.cells[w.0 * LENGTH_BUCKETS + l.0]
    }

    /// Mutable cell access.
    pub fn get_mut(&mut self, w: WidthCategory, l: LengthCategory) -> &mut T {
        &mut self.cells[w.0 * LENGTH_BUCKETS + l.0]
    }

    /// Iterates cells with their coordinates, row-major (width outer).
    pub fn iter(&self) -> impl Iterator<Item = (WidthCategory, LengthCategory, &T)> {
        self.cells.iter().enumerate().map(|(i, v)| {
            (
                WidthCategory(i / LENGTH_BUCKETS),
                LengthCategory(i % LENGTH_BUCKETS),
                v,
            )
        })
    }

    /// Maps every cell, preserving coordinates.
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> CategoryMatrix<U> {
        CategoryMatrix {
            cells: self.cells.iter().map(&mut f).collect(),
        }
    }
}

impl CategoryMatrix<u64> {
    /// Sum of all cells.
    pub fn total(&self) -> u64 {
        self.cells.iter().sum()
    }

    /// Per-width-bucket row sums (the marginals behind by-width figures).
    pub fn row_totals(&self) -> [u64; WIDTH_BUCKETS] {
        let mut out = [0u64; WIDTH_BUCKETS];
        for (w, _, v) in self.iter() {
            out[w.0] += *v;
        }
        out
    }

    /// Per-length-bucket column sums.
    pub fn col_totals(&self) -> [u64; LENGTH_BUCKETS] {
        let mut out = [0u64; LENGTH_BUCKETS];
        for (_, l, v) in self.iter() {
            out[l.0] += *v;
        }
        out
    }
}

impl CategoryMatrix<f64> {
    /// Sum of all cells.
    pub fn total(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// Per-width-bucket row sums.
    pub fn row_totals(&self) -> [f64; WIDTH_BUCKETS] {
        let mut out = [0.0; WIDTH_BUCKETS];
        for (w, _, v) in self.iter() {
            out[w.0] += *v;
        }
        out
    }

    /// Per-length-bucket column sums.
    pub fn col_totals(&self) -> [f64; LENGTH_BUCKETS] {
        let mut out = [0.0; LENGTH_BUCKETS];
        for (_, l, v) in self.iter() {
            out[l.0] += *v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_buckets_partition_the_node_range() {
        // Every node count from 1 to the cap lands in exactly one bucket,
        // and buckets are contiguous and ordered.
        let mut prev = None;
        for n in 1..=1024u32 {
            let w = WidthCategory::of(n);
            let (lo, hi) = w.bounds();
            assert!(n >= lo && n <= hi, "{n} outside bucket {:?}", w);
            if let Some(p) = prev {
                assert!(w.0 == p || w.0 == p + 1 || w == WidthCategory(p));
            }
            prev = Some(w.0);
        }
        assert_eq!(WidthCategory::of(1), WidthCategory(0));
        assert_eq!(WidthCategory::of(2), WidthCategory(1));
        assert_eq!(WidthCategory::of(4), WidthCategory(2));
        assert_eq!(WidthCategory::of(5), WidthCategory(3));
        assert_eq!(WidthCategory::of(512), WidthCategory(9));
        assert_eq!(WidthCategory::of(513), WidthCategory(10));
        // Beyond the generator cap still maps to the open-ended bucket.
        assert_eq!(WidthCategory::of(4096), WidthCategory(10));
    }

    #[test]
    fn length_buckets_partition_the_runtime_range() {
        for s in [
            1, 899, 900, 3599, 3600, 14_399, 14_400, 86_399, 86_400, 172_799, 172_800,
        ] {
            let l = LengthCategory::of(s);
            let (lo, hi) = l.bounds();
            assert!(s >= lo && s < hi, "{s} outside bucket {:?}", l);
        }
        assert_eq!(LengthCategory::of(1), LengthCategory(0));
        assert_eq!(LengthCategory::of(900), LengthCategory(1));
        assert_eq!(LengthCategory::of(3600), LengthCategory(2));
        assert_eq!(LengthCategory::of(86_400), LengthCategory(6));
        assert_eq!(LengthCategory::of(172_800), LengthCategory(7));
        // Past the cap still maps to the final bucket.
        assert_eq!(LengthCategory::of(90 * DAY), LengthCategory(7));
    }

    #[test]
    fn buckets_are_mutually_exclusive_and_exhaustive() {
        // Adjacent bounds meet exactly.
        for pair in WIDTH_BOUNDS.windows(2) {
            assert_eq!(pair[0].1 + 1, pair[1].0);
        }
        for pair in LENGTH_BOUNDS.windows(2) {
            assert_eq!(pair[0].1, pair[1].0);
        }
    }

    #[test]
    fn matrix_from_rows_round_trips_coordinates() {
        let mut rows = [[0u64; LENGTH_BUCKETS]; WIDTH_BUCKETS];
        for (w, row) in rows.iter_mut().enumerate() {
            for (l, cell) in row.iter_mut().enumerate() {
                *cell = (w * 100 + l) as u64;
            }
        }
        let m = CategoryMatrix::from_rows(rows);
        for (w, l, v) in m.iter() {
            assert_eq!(*v, (w.0 * 100 + l.0) as u64);
        }
        assert_eq!(*m.get(WidthCategory(3), LengthCategory(5)), 305);
    }

    #[test]
    fn matrix_marginals_sum_to_total() {
        let mut m: CategoryMatrix<u64> = CategoryMatrix::new();
        *m.get_mut(WidthCategory(0), LengthCategory(0)) = 3;
        *m.get_mut(WidthCategory(10), LengthCategory(7)) = 4;
        *m.get_mut(WidthCategory(5), LengthCategory(2)) = 5;
        assert_eq!(m.total(), 12);
        assert_eq!(m.row_totals().iter().sum::<u64>(), 12);
        assert_eq!(m.col_totals().iter().sum::<u64>(), 12);
        assert_eq!(m.row_totals()[5], 5);
        assert_eq!(m.col_totals()[7], 4);
    }

    #[test]
    fn labels_match_bucket_counts() {
        assert_eq!(WIDTH_LABELS.len(), WIDTH_BUCKETS);
        assert_eq!(LENGTH_LABELS.len(), LENGTH_BUCKETS);
        assert_eq!(WidthCategory(2).label(), "3-4");
        assert_eq!(LengthCategory(6).label(), "1-2 days");
    }

    #[test]
    fn map_preserves_shape() {
        let mut m: CategoryMatrix<u64> = CategoryMatrix::new();
        *m.get_mut(WidthCategory(1), LengthCategory(1)) = 7;
        let doubled = m.map(|v| *v as f64 * 2.0);
        assert_eq!(*doubled.get(WidthCategory(1), LengthCategory(1)), 14.0);
        assert_eq!(doubled.total(), 14.0);
    }
}
