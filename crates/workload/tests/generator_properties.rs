//! Property tests for the workload substrate: the synthetic generator must
//! emit valid, machine-respecting, horizon-bounded traces for *any*
//! (seed, scale, nodes) choice, the category buckets must partition, and
//! the SWF reader must never panic on arbitrary input.

use fairsched_workload::categories::{LengthCategory, WidthCategory};
use fairsched_workload::job::validate_trace;
use fairsched_workload::swf::{read_swf_str, write_swf_string};
use fairsched_workload::synthetic::random_trace;
use fairsched_workload::CplantModel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generator_output_is_always_valid(
        seed in 0u64..10_000,
        scale in 0.005f64..0.05,
        nodes in prop::sample::select(vec![64u32, 256, 1024, 2048]),
    ) {
        let model = CplantModel::new(seed).with_nodes(nodes).with_scale(scale);
        let horizon = model.horizon();
        let trace = model.generate();
        validate_trace(&trace).expect("valid trace");
        for job in &trace {
            prop_assert!(job.nodes <= nodes);
            prop_assert!(job.submit < horizon);
            prop_assert!(job.runtime >= 1 && job.estimate >= 1);
        }
    }

    #[test]
    fn width_buckets_partition(nodes in 1u32..5000) {
        let w = WidthCategory::of(nodes);
        let (lo, hi) = w.bounds();
        if nodes <= 1024 {
            prop_assert!(nodes >= lo && nodes <= hi);
        } else {
            // Everything beyond the table cap maps to the open-ended bucket.
            prop_assert_eq!(w, WidthCategory(10));
        }
    }

    #[test]
    fn length_buckets_partition(runtime in 1u64..5_000_000) {
        let l = LengthCategory::of(runtime);
        let (lo, hi) = l.bounds();
        if runtime < 2_592_000 {
            prop_assert!(runtime >= lo && runtime < hi);
        } else {
            prop_assert_eq!(l, LengthCategory(7));
        }
    }

    #[test]
    fn swf_reader_never_panics_on_garbage(text in "\\PC{0,400}") {
        // Arbitrary printable garbage: must parse to SOMETHING, not panic.
        let _ = read_swf_str(&text);
    }

    #[test]
    fn swf_reader_is_total_on_numeric_soup(
        rows in prop::collection::vec(
            prop::collection::vec(-5i64..1_000_000, 0..25), 0..20)
    ) {
        let text: String = rows
            .iter()
            .map(|row| {
                row.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(" ")
            })
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = read_swf_str(&text).expect("string reads never fail on I/O");
        // Whatever survived cleaning must be a valid, sorted trace.
        validate_trace(&parsed.jobs).expect("cleaned rows are valid");
    }

    #[test]
    fn random_traces_round_trip_swf(seed in 0u64..10_000, n in 1usize..80) {
        let trace = random_trace(seed, n, 32, 5_000);
        let text = write_swf_string(&trace, 32, "prop");
        let parsed = read_swf_str(&text).expect("parses");
        prop_assert_eq!(parsed.jobs, trace);
    }
}

#[test]
fn scales_interpolate_job_counts_monotonically_in_expectation() {
    // Bigger scale ⇒ more jobs, across several seeds.
    for seed in [1u64, 7, 99] {
        let small = CplantModel::new(seed).with_scale(0.02).generate().len();
        let large = CplantModel::new(seed).with_scale(0.2).generate().len();
        assert!(
            large > 5 * small,
            "scale 0.2 gave {large} jobs vs {small} at 0.02 (seed {seed})"
        );
    }
}
