//! One online scheduling session: the deterministic stepped core behind a
//! lock, plus the service bookkeeping the daemon exposes.
//!
//! A [`Session`] owns a [`SteppedSim`] and enforces the online contract on
//! top of it:
//!
//! * **Monotonic submissions.** A submission dated before the clock
//!   horizon already granted to the core is rejected with
//!   [`ServeError::NonMonotonicSubmit`] — events at or before the granted
//!   horizon may already have been processed, so accepting it would
//!   silently rewrite history. Submissions dated at or past the horizon
//!   are byte-equivalent to a batch run (the event queue is
//!   insertion-order independent).
//! * **Typed policy validation.** The session is built from a policy id
//!   via [`PolicySpec::parse`]; an unknown id is
//!   [`ServeError::UnknownPolicy`] wrapping the workspace's own
//!   [`PolicyIdError`](fairsched_core::policy::PolicyIdError).
//! * **Unique ids.** Reusing an accepted id is
//!   [`ServeError::DuplicateId`] (the simulator would treat it as a
//!   distinct pending submission and corrupt the chain bookkeeping).
//!
//! Everything stateful sits behind one mutex: handlers lock, mutate, and
//! release; trace subscribers receive JSONL lines through channels so
//! slow readers never block the scheduling path (a disconnected or
//! saturated subscriber is dropped, not waited on).

use crate::api::{
    schedule_fingerprint, AdvanceResponse, SealResponse, ServeError, StatusResponse, SubmitRequest,
    SubmitResponse,
};
use crate::clock::{ClockMode, VirtualClock};
use crate::journal::SessionJournal;
use crate::metrics::ServiceMetrics;
use fairsched_core::policy::PolicySpec;
use fairsched_metrics::explain::{explain_wait, WaitBreakdown};
use fairsched_metrics::fairness::peruser::UserFairness;
use fairsched_metrics::fairness::stream::{FairnessSnapshot, StreamingFairness};
use fairsched_obs::counters::{CounterSnapshot, ProfileReport, ProfileScope};
use fairsched_obs::TraceRecord;
use fairsched_sim::{
    Effect, JobRecord, Observer, Schedule, SimConfig, SimError, SimEvent, SteppedSim,
};
use fairsched_workload::job::JobId;
use fairsched_workload::time::Time;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{
    sync_channel, Receiver, RecvError, RecvTimeoutError, SyncSender, TryRecvError, TrySendError,
};
use std::sync::{Arc, Mutex, TryLockError};
use std::time::{Duration, Instant};

/// How a [`Session`] is configured.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Policy id (parsed via [`PolicySpec::parse`]).
    pub policy: String,
    /// Machine size in nodes.
    pub nodes: u32,
    /// How simulated time advances.
    pub clock: ClockMode,
    /// Whether to emit trace effects (required for trace streaming and
    /// live explain).
    pub traced: bool,
    /// Raises the floor fresh chunk/resubmission ids are minted from, so
    /// an online replay of a recorded trace reproduces the batch path's
    /// id numbering. 0 leaves the floor at the ids seen so far.
    pub id_floor: u32,
    /// Trace-subscriber channel depth in lines. A reader further behind
    /// than this is dropped rather than allowed to stall the scheduling
    /// path; the drop is counted (see [`TraceSubscription::dropped`]).
    pub trace_buffer: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            policy: "easy.nomax".into(),
            nodes: 1024,
            clock: ClockMode::Manual,
            traced: true,
            id_floor: 0,
            trace_buffer: SUBSCRIBER_BUFFER,
        }
    }
}

/// Default subscriber channel depth (lines).
const SUBSCRIBER_BUFFER: usize = 64 * 1024;

/// One attached trace reader: its channel, plus the count of lines the
/// session had to drop on it. The counter outlives eviction from the
/// subscriber list, so the stream handler can report the loss on close.
struct Subscriber {
    tx: SyncSender<Option<String>>,
    dropped: Arc<AtomicU64>,
}

/// The receiving half of a trace subscription.
pub struct TraceSubscription {
    rx: Receiver<Option<String>>,
    dropped: Arc<AtomicU64>,
}

impl TraceSubscription {
    /// The next line; `Ok(None)` marks the end (seal). `Err` means the
    /// session dropped this subscriber for falling behind.
    pub fn recv(&self) -> Result<Option<String>, RecvError> {
        self.rx.recv()
    }

    /// Lines the session dropped on this subscriber because its buffer
    /// was full. Nonzero only for readers that fell behind.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }
}

struct Inner {
    core: Option<SteppedSim>,
    clock: VirtualClock,
    accepted: HashMap<JobId, Time>,
    completed: Vec<JobRecord>,
    started: HashMap<JobId, Time>,
    submissions: HashMap<JobId, SubmitRequest>,
    trace: Vec<TraceRecord>,
    subscribers: Vec<Subscriber>,
    schedule: Option<Schedule>,
    steps: u64,
    stream: StreamingFairness,
    /// The durability journal, when attached. Appends happen under this
    /// mutex, in apply order, so the file is always an ordered prefix of
    /// the session's accepted history.
    journal: Option<SessionJournal>,
    /// The highest clock horizon already journaled (grants are only
    /// journaled when they move this forward).
    journaled_granted: Time,
}

/// A submission waiting in the batching queue, with the channel its
/// submitter blocks on.
type PendingSubmit = (
    SubmitRequest,
    SyncSender<Result<SubmitResponse, ServeError>>,
);

/// One online scheduling session. Thread-safe: the daemon shares it
/// across connection handlers.
pub struct Session {
    cfg: SessionConfig,
    sim_cfg: SimConfig,
    inner: Mutex<Inner>,
    /// Submissions queued for the next batch. Whoever wins the `inner`
    /// lock drains and processes everyone's queued submissions (flat
    /// combining), so the mutex and the journal fsync are paid once per
    /// batch rather than once per request.
    pending: Mutex<VecDeque<PendingSubmit>>,
    metrics: Arc<ServiceMetrics>,
    // Live profiling: counters record for the whole session lifetime.
    baseline: CounterSnapshot,
    started_at: Instant,
    _profile: ProfileScope,
}

impl Session {
    /// Builds a session with its own metrics registry, parsing and
    /// validating the policy id up front.
    pub fn new(cfg: SessionConfig) -> Result<Session, ServeError> {
        Session::with_metrics(cfg, Arc::new(ServiceMetrics::new()))
    }

    /// Builds a session sharing a daemon-wide metrics registry (the
    /// registry hosts many sessions; request accounting and journal
    /// counters aggregate across them).
    pub fn with_metrics(
        cfg: SessionConfig,
        metrics: Arc<ServiceMetrics>,
    ) -> Result<Session, ServeError> {
        let spec = PolicySpec::parse(&cfg.policy).map_err(ServeError::UnknownPolicy)?;
        let sim_cfg = spec.sim_config(cfg.nodes);
        let mut core = SteppedSim::with_trace_effects(&sim_cfg, cfg.traced)?;
        if cfg.id_floor > 0 {
            core.reserve_ids(cfg.id_floor);
        }
        let profile = ProfileScope::enter();
        Ok(Session {
            inner: Mutex::new(Inner {
                core: Some(core),
                clock: VirtualClock::new(cfg.clock),
                accepted: HashMap::new(),
                completed: Vec::new(),
                started: HashMap::new(),
                submissions: HashMap::new(),
                trace: Vec::new(),
                subscribers: Vec::new(),
                schedule: None,
                steps: 0,
                stream: StreamingFairness::new(sim_cfg.nodes),
                journal: None,
                journaled_granted: 0,
            }),
            cfg,
            sim_cfg,
            pending: Mutex::new(VecDeque::new()),
            metrics,
            baseline: CounterSnapshot::capture(),
            started_at: Instant::now(),
            _profile: profile,
        })
    }

    /// Attaches the durability journal: every accepted submission, grant,
    /// and the seal append to it from now on. Used at session creation
    /// (fresh journal) and after recovery (reopened for append).
    pub fn attach_journal(&self, journal: SessionJournal) {
        let mut inner = self.lock();
        inner.journaled_granted = inner.clock.target();
        inner.journal = Some(journal);
    }

    /// Swaps the clock mode in place, continuing from the horizon granted
    /// so far. Recovery replays a journal under a manual clock (realtime
    /// clocks track the wall and would tear the replayed grant sequence),
    /// then adopts the session's configured mode with this.
    pub fn adopt_clock(&self, mode: ClockMode) {
        let mut inner = self.lock();
        let granted = inner.clock.target();
        inner.clock = VirtualClock::resume_at(mode, granted);
    }

    /// The session's metric handles (request accounting and the
    /// `/metrics` renderer live here).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// The live fairness verdict: every gauge, plus per-user rows
    /// (heaviest consumers first). At seal this equals the batch
    /// `ObserverSet` verdict for the same trace — the stream observer
    /// saw exactly the hooks a batch run fires.
    pub fn fairness(&self) -> (FairnessSnapshot, Vec<UserFairness>) {
        let inner = self.lock();
        (inner.stream.snapshot(), inner.stream.users())
    }

    /// The live fair-start report over jobs started so far (convergence
    /// pinning reads this after seal).
    pub fn fst_report(&self) -> fairsched_metrics::fairness::fst::FstReport {
        self.lock().stream.report()
    }

    /// Accepts one submission, enforcing monotonic timestamps and unique
    /// ids at the boundary. Journals and fsyncs before returning; the
    /// batching entry point is [`Session::submit_batched`].
    pub fn submit(&self, req: &SubmitRequest) -> Result<SubmitResponse, ServeError> {
        let mut inner = self.lock();
        let result = Self::apply_submit(&mut inner, req, &self.metrics);
        self.commit_journal(&mut inner);
        result
    }

    /// Accepts one submission through the batching layer: the request
    /// joins the pending queue and whichever submitter holds the session
    /// mutex processes the whole queue — one lock acquisition and one
    /// journal fsync for the entire batch. Under contention this is the
    /// path that keeps 1000 concurrent submitters off the lock; without
    /// contention it degenerates to [`Session::submit`] plus one queue
    /// push.
    pub fn submit_batched(&self, req: &SubmitRequest) -> Result<SubmitResponse, ServeError> {
        let (tx, rx) = sync_channel(1);
        self.pending_lock().push_back((req.clone(), tx));
        loop {
            // The batch we joined may already have been processed by the
            // current combiner; check before competing for the lock.
            match rx.try_recv() {
                Ok(result) => return result,
                Err(TryRecvError::Disconnected) => {
                    return Err(ServeError::Io("submission batch dropped".into()))
                }
                Err(TryRecvError::Empty) => {}
            }
            match self.inner.try_lock() {
                Ok(mut inner) => self.drain_pending(&mut inner),
                Err(TryLockError::Poisoned(p)) => self.drain_pending(&mut p.into_inner()),
                // Someone else is combining; they will (probably) take
                // our request with them. Wait briefly, then re-check in
                // case our push raced past their final drain.
                Err(TryLockError::WouldBlock) => {}
            }
            match rx.recv_timeout(Duration::from_millis(1)) {
                Ok(result) => return result,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ServeError::Io("submission batch dropped".into()))
                }
            }
        }
    }

    /// Processes every queued submission while holding the session lock
    /// (the flat-combining step), then commits the journal once and
    /// answers every submitter. Loops until the queue stays empty so
    /// requests pushed mid-batch are not stranded behind a lock no one
    /// holds.
    fn drain_pending(&self, inner: &mut Inner) {
        loop {
            let batch: Vec<PendingSubmit> = self.pending_lock().drain(..).collect();
            if batch.is_empty() {
                return;
            }
            let mut replies = Vec::with_capacity(batch.len());
            for (req, tx) in batch {
                replies.push((tx, Self::apply_submit(inner, &req, &self.metrics)));
            }
            // One fsync for the whole batch — and only after it, the
            // acks: acknowledged implies journaled.
            self.commit_journal(inner);
            for (tx, result) in replies {
                let _ = tx.send(result);
            }
        }
    }

    /// Validates and applies one submission to the core, appending it to
    /// the journal buffer (not yet committed) when accepted.
    fn apply_submit(
        inner: &mut Inner,
        req: &SubmitRequest,
        metrics: &ServiceMetrics,
    ) -> Result<SubmitResponse, ServeError> {
        if inner.core.is_none() {
            return Err(ServeError::Sealed);
        }
        let id = JobId(req.id);
        let granted = inner.clock.target();
        if req.submit < granted {
            return Err(ServeError::NonMonotonicSubmit {
                job: id,
                submit: req.submit,
                granted,
            });
        }
        if inner.accepted.contains_key(&id) {
            return Err(ServeError::DuplicateId { job: id });
        }
        let job = req.to_job();
        let Inner { core, stream, .. } = &mut *inner;
        let core = core.as_mut().expect("checked above");
        let effects = match core.step(SimEvent::Submit(job), stream) {
            Ok(effects) => effects,
            // The core's own past-frontier guard, in case a manual
            // advance outran the clock (it cannot via this session, but
            // the mapping keeps the error typed rather than `Sim`).
            Err(SimError::SubmittedInPast { job, submit, now }) => {
                return Err(ServeError::NonMonotonicSubmit {
                    job,
                    submit,
                    granted: now,
                });
            }
            Err(e) => return Err(e.into()),
        };
        inner.steps += 1;
        inner.accepted.insert(id, req.submit);
        inner.submissions.insert(id, req.clone());
        if let Some(journal) = inner.journal.as_mut() {
            match journal.append_submit(req) {
                Ok(bytes) => metrics.journal_bytes.add(bytes),
                // The core already accepted; a failed append means the
                // journal is now missing an accepted row. Surface the
                // fault loudly — recovery from this journal would lose
                // the submission.
                Err(e) => fairsched_obs::log::warn(format!(
                    "journal append failed for job {}: {e}; recovery would lose it",
                    req.id
                )),
            }
        }
        let arrival = effects
            .iter()
            .find_map(|e| match e {
                Effect::Admitted { arrival, .. } => Some(*arrival),
                _ => None,
            })
            .unwrap_or(req.submit);
        Ok(SubmitResponse {
            id: req.id,
            arrival,
        })
    }

    /// Journals a grant row if the horizon moved past what is already on
    /// disk. Called after the clock jumps, under the session lock.
    fn journal_grant(inner: &mut Inner, metrics: &ServiceMetrics) {
        let target = inner.clock.target();
        if target <= inner.journaled_granted {
            return;
        }
        inner.journaled_granted = target;
        if let Some(journal) = inner.journal.as_mut() {
            match journal.append_grant(target) {
                Ok(bytes) => metrics.journal_bytes.add(bytes),
                Err(e) => {
                    fairsched_obs::log::warn(format!("journal grant append failed: {e}"));
                }
            }
        }
    }

    /// Commits buffered journal rows: one flush + one fsync for whatever
    /// accumulated since the last commit.
    fn commit_journal(&self, inner: &mut Inner) {
        if let Some(journal) = inner.journal.as_mut() {
            match journal.commit() {
                Ok(true) => self.metrics.journal_batches.inc(),
                Ok(false) => {}
                Err(e) => fairsched_obs::log::warn(format!("journal commit failed: {e}")),
            }
        }
    }

    fn pending_lock(&self) -> std::sync::MutexGuard<'_, VecDeque<PendingSubmit>> {
        self.pending.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Grants simulated time up to `to` (manual clocks; realtime clocks
    /// jump forward too — the tick loop calls [`Session::tick`] instead).
    pub fn advance_to(&self, to: Time) -> Result<AdvanceResponse, ServeError> {
        let mut inner = self.lock();
        inner.clock.jump_to(to);
        let target = inner.clock.target();
        let result = Self::drive(&mut inner, target, &self.metrics);
        // The grant is journaled only after the core accepted it; a grant
        // that never reached the core must not steer recovery.
        if result.is_ok() {
            Self::journal_grant(&mut inner, &self.metrics);
            self.commit_journal(&mut inner);
        }
        result
    }

    /// Advances to the clock's current target (realtime mode's heartbeat;
    /// a no-op for manual clocks).
    pub fn tick(&self) -> Result<AdvanceResponse, ServeError> {
        let mut inner = self.lock();
        let target = inner.clock.target();
        let result = Self::drive(&mut inner, target, &self.metrics);
        if result.is_ok() {
            Self::journal_grant(&mut inner, &self.metrics);
            self.commit_journal(&mut inner);
        }
        result
    }

    fn drive(
        inner: &mut Inner,
        target: Time,
        metrics: &ServiceMetrics,
    ) -> Result<AdvanceResponse, ServeError> {
        let Inner { core, stream, .. } = &mut *inner;
        let Some(core) = core.as_mut() else {
            return Err(ServeError::Sealed);
        };
        let mut started = 0;
        let mut completed = 0;
        let mut lines: Vec<String> = Vec::new();
        if core.next_wakeup().is_some_and(|t| t <= target) {
            let effects = core.step(SimEvent::AdvanceTo(target), stream)?;
            inner.steps += 1;
            for effect in effects {
                match effect {
                    Effect::Started { job, at } => {
                        started += 1;
                        inner.started.insert(job, at);
                    }
                    Effect::Completed { record } => {
                        completed += 1;
                        inner.completed.push(record);
                    }
                    Effect::Trace { record } => {
                        lines.push(record.to_jsonl());
                        inner.trace.push(record);
                    }
                    Effect::Admitted { .. } => {}
                }
            }
        }
        let now = inner.core.as_ref().expect("checked above").now();
        if !lines.is_empty() {
            Self::broadcast(&mut inner.subscribers, &lines, metrics);
        }
        Ok(AdvanceResponse {
            now,
            started,
            completed,
        })
    }

    fn broadcast(subscribers: &mut Vec<Subscriber>, lines: &[String], metrics: &ServiceMetrics) {
        subscribers.retain(|sub| {
            for (i, line) in lines.iter().enumerate() {
                match sub.tx.try_send(Some(line.clone())) {
                    Ok(()) => {}
                    // A full reader is dropped, never waited on: the
                    // scheduling path must not block. The loss is counted
                    // on the subscriber (its stream handler reports it at
                    // close) and in the registry.
                    Err(TrySendError::Full(_)) => {
                        let lost = (lines.len() - i) as u64;
                        sub.dropped.fetch_add(lost, Relaxed);
                        metrics.trace_lines_dropped.add(lost);
                        metrics.trace_subscribers_dropped.inc();
                        return false;
                    }
                    // A disconnected reader already went away by itself;
                    // nothing was lost on it.
                    Err(TrySendError::Disconnected(_)) => return false,
                }
            }
            true
        });
    }

    /// Subscribes to the trace stream: every `TraceRecord` emitted after
    /// this call arrives as one JSONL line; `None` marks the end (seal).
    /// The subscription also carries this reader's drop counter.
    pub fn subscribe(&self) -> TraceSubscription {
        let (tx, rx) = sync_channel(self.cfg.trace_buffer.max(1));
        let dropped = Arc::new(AtomicU64::new(0));
        self.lock().subscribers.push(Subscriber {
            tx,
            dropped: Arc::clone(&dropped),
        });
        TraceSubscription { rx, dropped }
    }

    /// The live status view.
    pub fn status(&self) -> StatusResponse {
        let inner = self.lock();
        let (now, queued, running, free, down, next_event) = match inner.core.as_ref() {
            Some(core) => {
                let s = core.status();
                (s.now, s.queued, s.running, s.free, s.down, s.next_event)
            }
            None => {
                let s = inner.schedule.as_ref();
                (
                    s.map_or(0, Schedule::makespan),
                    0,
                    0,
                    self.sim_cfg.nodes,
                    0,
                    None,
                )
            }
        };
        StatusResponse {
            policy: self.cfg.policy.clone(),
            nodes: self.sim_cfg.nodes,
            now,
            granted: inner.clock.target(),
            queued,
            running,
            free,
            down,
            accepted: inner.accepted.len() as u64,
            completed: inner.completed.len() as u64,
            next_event,
            sealed: inner.core.is_none(),
        }
    }

    /// A finished submission's record, if it has completed.
    pub fn record_of(&self, id: JobId) -> Option<JobRecord> {
        self.lock().completed.iter().find(|r| r.id == id).copied()
    }

    /// Explains a submission's wait *live*, against the decision trace
    /// accumulated so far. Works for completed submissions and for ones
    /// that have started but not finished (their record is synthesized
    /// with `end = now`). Queued submissions have no start to explain
    /// yet; `Ok(None)`.
    pub fn explain(&self, id: JobId) -> Result<Option<WaitBreakdown>, ServeError> {
        let inner = self.lock();
        if !self.cfg.traced {
            return Err(ServeError::BadRequest {
                detail: "session runs without trace effects; start fairschedd \
                         with tracing to explain live"
                    .into(),
            });
        }
        let record = inner
            .completed
            .iter()
            .find(|r| r.id == id)
            .copied()
            .or_else(|| {
                // Started but not finished: synthesize the record shape
                // explain needs (only submit/start are read).
                let start = *inner.started.get(&id)?;
                let req = inner.submissions.get(&id)?;
                let now = inner.core.as_ref().map_or(start, SteppedSim::now);
                Some(JobRecord {
                    id,
                    origin: id,
                    chunk_index: 0,
                    user: fairsched_workload::job::UserId(req.user),
                    group: fairsched_workload::job::GroupId(req.group),
                    nodes: req.nodes,
                    submit: req.submit,
                    origin_submit: req.submit,
                    start,
                    end: now.max(start),
                    estimate: req.estimate,
                    killed: false,
                    interrupted: false,
                })
            });
        let Some(record) = record else {
            return Ok(None);
        };
        // explain_wait reads only `records` from the schedule; the
        // integrals are irrelevant to a single job's wait decomposition.
        let view = Schedule {
            nodes: self.sim_cfg.nodes,
            records: vec![record],
            waste_nodeseconds: 0.0,
            busy_nodeseconds: 0.0,
            down_nodeseconds: 0.0,
            lost_nodeseconds: 0.0,
            weekly_busy: Vec::new(),
            min_start: record.start,
            max_completion: record.end,
            placement: None,
            queue_stats: Default::default(),
        };
        Ok(explain_wait(&inner.trace, &view, id))
    }

    /// Where the session's scheduling time has gone so far.
    pub fn profile(&self) -> ProfileReport {
        ProfileReport {
            counters: CounterSnapshot::capture().since(&self.baseline),
            wall_ns: self.started_at.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        }
    }

    /// Event batches granted plus submissions accepted — the denominator
    /// for steps/second service metrics.
    pub fn steps(&self) -> u64 {
        self.lock().steps
    }

    /// Seals the session: plays out every remaining event, closes the
    /// trace stream, and returns the final schedule summary. Further
    /// submissions and grants fail with [`ServeError::Sealed`].
    pub fn seal(&self) -> Result<SealResponse, ServeError> {
        let mut inner = self.lock();
        let Some(mut core) = inner.core.take() else {
            return Err(ServeError::Sealed);
        };
        let mut lines = Vec::new();
        while let Some(at) = core.next_wakeup() {
            for effect in core.step(SimEvent::AdvanceTo(at), &mut inner.stream)? {
                match effect {
                    Effect::Started { job, at } => {
                        inner.started.insert(job, at);
                    }
                    Effect::Completed { record } => inner.completed.push(record),
                    Effect::Trace { record } => {
                        lines.push(record.to_jsonl());
                        inner.trace.push(record);
                    }
                    Effect::Admitted { .. } => {}
                }
            }
            inner.steps += 1;
        }
        inner.clock.jump_to(core.now());
        let schedule = core.finish()?;
        // Fire the whole-run hook the batch API would: the stream
        // observer's verdict is now final and equal to the batch one.
        inner.stream.on_finish(&schedule);
        if !lines.is_empty() {
            Self::broadcast(&mut inner.subscribers, &lines, &self.metrics);
        }
        for sub in inner.subscribers.drain(..) {
            let _ = sub.tx.try_send(None);
        }
        if let Some(journal) = inner.journal.as_mut() {
            match journal.append_seal() {
                Ok(bytes) => self.metrics.journal_bytes.add(bytes),
                Err(e) => fairsched_obs::log::warn(format!("journal seal append failed: {e}")),
            }
        }
        self.commit_journal(&mut inner);
        let summary = SealResponse {
            records: schedule.records.len() as u64,
            makespan: schedule.makespan(),
            utilization: schedule.utilization(),
            schedule_fnv: schedule_fingerprint(&schedule),
        };
        inner.schedule = Some(schedule);
        Ok(summary)
    }

    /// The finished schedule, once sealed.
    pub fn schedule(&self) -> Option<Schedule> {
        self.lock().schedule.clone()
    }

    /// The session's configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_sim::{simulate, NullObserver as NO, SimOptions};
    use fairsched_workload::job::Job;

    fn req(id: u32, user: u32, submit: Time, nodes: u32, runtime: Time) -> SubmitRequest {
        SubmitRequest {
            id,
            user,
            group: 1,
            submit,
            nodes,
            runtime,
            estimate: runtime,
        }
    }

    fn manual_session(policy: &str) -> Session {
        Session::new(SessionConfig {
            policy: policy.into(),
            nodes: 32,
            clock: ClockMode::Manual,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn unknown_policy_ids_are_rejected_with_the_typed_error() {
        let err = match Session::new(SessionConfig {
            policy: "definitely-not-a-policy".into(),
            ..Default::default()
        }) {
            Ok(_) => panic!("unknown policy id accepted"),
            Err(e) => e,
        };
        match err {
            ServeError::UnknownPolicy(e) => assert_eq!(e.id, "definitely-not-a-policy"),
            other => panic!("expected UnknownPolicy, got {other:?}"),
        }
    }

    #[test]
    fn non_monotonic_submissions_are_rejected_with_the_typed_error() {
        let session = manual_session("easy.nomax");
        session.submit(&req(1, 1, 0, 32, 100)).unwrap();
        session.advance_to(1000).unwrap();
        let err = session.submit(&req(2, 2, 999, 4, 50)).unwrap_err();
        match err {
            ServeError::NonMonotonicSubmit {
                job,
                submit,
                granted,
            } => {
                assert_eq!(job, JobId(2));
                assert_eq!(submit, 999);
                assert_eq!(granted, 1000);
            }
            other => panic!("expected NonMonotonicSubmit, got {other:?}"),
        }
        // At the horizon is fine.
        session.submit(&req(3, 3, 1000, 4, 50)).unwrap();
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let session = manual_session("easy.nomax");
        session.submit(&req(1, 1, 0, 4, 100)).unwrap();
        let err = session.submit(&req(1, 2, 5, 8, 60)).unwrap_err();
        assert!(matches!(err, ServeError::DuplicateId { job } if job == JobId(1)));
    }

    #[test]
    fn online_session_matches_batch_simulation() {
        let jobs = [
            Job::new(1, 1, 1, 0, 32, 500, 500),
            Job::new(2, 2, 1, 10, 16, 200, 300),
            Job::new(3, 3, 1, 400, 32, 100, 100),
        ];
        let spec = PolicySpec::parse("cplant24.nomax.all").unwrap();
        let cfg = spec.sim_config(32);
        let batch = simulate(&jobs, &cfg, &mut NO, SimOptions::new()).unwrap();

        let session = manual_session("cplant24.nomax.all");
        for job in &jobs {
            session.submit(&SubmitRequest::from_job(job)).unwrap();
        }
        let summary = session.seal().unwrap();
        assert_eq!(summary.records, batch.records.len() as u64);
        assert_eq!(session.schedule().unwrap(), batch);
    }

    #[test]
    fn batched_submissions_match_the_batch_simulation() {
        // 64 submitters race through the flat-combining path; the sealed
        // schedule must equal the batch simulation of the same jobs (the
        // core's event queue is insertion-order independent, and every
        // submission is dated inside the never-granted epoch 0).
        let jobs: Vec<Job> = (0..64u32)
            .map(|i| {
                Job::new(
                    i + 1,
                    i % 7 + 1,
                    1,
                    u64::from(i),
                    (i % 16) + 1,
                    100 + u64::from(i) * 3,
                    200 + u64::from(i) * 3,
                )
            })
            .collect();
        let spec = PolicySpec::parse("easy.nomax").unwrap();
        let cfg = spec.sim_config(32);
        let batch = simulate(&jobs, &cfg, &mut NO, SimOptions::new()).unwrap();

        let session = Arc::new(manual_session("easy.nomax"));
        let handles: Vec<_> = jobs
            .iter()
            .map(|job| {
                let session = Arc::clone(&session);
                let req = SubmitRequest::from_job(job);
                std::thread::spawn(move || session.submit_batched(&req).unwrap())
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let summary = session.seal().unwrap();
        assert_eq!(summary.records, batch.records.len() as u64);
        assert_eq!(summary.schedule_fnv, schedule_fingerprint(&batch));
        assert_eq!(session.schedule().unwrap(), batch);
    }

    #[test]
    fn subscribers_stream_trace_lines_and_see_the_close() {
        let session = manual_session("easy.nomax");
        let rx = session.subscribe();
        session.submit(&req(1, 1, 0, 32, 100)).unwrap();
        session.submit(&req(2, 2, 5, 32, 50)).unwrap();
        session.seal().unwrap();
        let mut lines = Vec::new();
        while let Ok(Some(line)) = rx.recv() {
            lines.push(line);
        }
        assert!(!lines.is_empty());
        assert!(lines.iter().any(|l| l.contains("job_started")));
    }

    #[test]
    fn slow_subscribers_are_dropped_with_a_counted_loss() {
        let session = Session::new(SessionConfig {
            policy: "easy.nomax".into(),
            nodes: 32,
            clock: ClockMode::Manual,
            trace_buffer: 2, // deliberately tiny: the reader must fall behind
            ..Default::default()
        })
        .unwrap();
        let sub = session.subscribe();
        // Never read while 16 jobs' worth of trace lines broadcast at seal.
        for i in 0..16u32 {
            session
                .submit(&req(i + 1, i + 1, u64::from(i) * 5, 4, 50))
                .unwrap();
        }
        session.seal().unwrap();
        let mut delivered = 0;
        let saw_terminator = loop {
            match sub.recv() {
                Ok(Some(_)) => delivered += 1,
                Ok(None) => break true,
                Err(_) => break false,
            }
        };
        assert!(
            !saw_terminator,
            "a dropped subscriber must not see a clean close"
        );
        assert!(delivered <= 2, "buffer held {delivered} lines");
        assert!(sub.dropped() > 0);
        assert_eq!(
            session.metrics().trace_lines_dropped.value(),
            sub.dropped(),
            "registry counter must agree with the per-subscriber count"
        );
        assert_eq!(session.metrics().trace_subscribers_dropped.value(), 1);
    }

    #[test]
    fn healthy_subscribers_report_zero_drops() {
        let session = manual_session("easy.nomax");
        let sub = session.subscribe();
        session.submit(&req(1, 1, 0, 32, 100)).unwrap();
        session.seal().unwrap();
        while let Ok(Some(_)) = sub.recv() {}
        assert_eq!(sub.dropped(), 0);
        assert_eq!(session.metrics().trace_lines_dropped.value(), 0);
    }

    #[test]
    fn sealed_fairness_matches_the_batch_observers() {
        use fairsched_metrics::fairness::hybrid::HybridFstObserver;
        use fairsched_metrics::fairness::peruser::per_user_of;

        let jobs = [
            Job::new(1, 1, 1, 0, 32, 500, 500),
            Job::new(2, 2, 1, 10, 16, 200, 300),
            Job::new(3, 1, 1, 20, 16, 300, 300),
            Job::new(4, 3, 1, 400, 32, 100, 100),
        ];
        let spec = PolicySpec::parse("easy.nomax").unwrap();
        let cfg = spec.sim_config(32);
        let mut batch = HybridFstObserver::new();
        let schedule = simulate(&jobs, &cfg, &mut batch, SimOptions::new()).unwrap();
        let batch_report = batch.into_report();

        let session = manual_session("easy.nomax");
        for job in &jobs {
            session.submit(&SubmitRequest::from_job(job)).unwrap();
        }
        session.seal().unwrap();

        assert_eq!(session.fst_report(), batch_report);
        let (snap, users) = session.fairness();
        assert_eq!(users, per_user_of(&schedule.records, &batch_report));
        assert!(
            (snap.utilization - schedule.utilization()).abs() < 1e-9,
            "live {} vs batch {}",
            snap.utilization,
            schedule.utilization()
        );
        assert_eq!(snap.completed as usize, schedule.records.len());
        assert_eq!(snap.queue_depth, 0);
    }

    #[test]
    fn sealed_sessions_reject_further_work() {
        let session = manual_session("easy.nomax");
        session.submit(&req(1, 1, 0, 4, 10)).unwrap();
        session.seal().unwrap();
        assert!(matches!(
            session.submit(&req(2, 1, 20, 4, 10)),
            Err(ServeError::Sealed)
        ));
        assert!(matches!(session.advance_to(99), Err(ServeError::Sealed)));
        assert!(matches!(session.seal(), Err(ServeError::Sealed)));
        assert!(session.status().sealed);
    }

    #[test]
    fn live_explain_decomposes_a_completed_wait() {
        let session = manual_session("easy.nomax");
        // Job 2 must wait for job 1 to release the whole machine.
        session.submit(&req(1, 1, 0, 32, 300)).unwrap();
        session.submit(&req(2, 2, 10, 32, 100)).unwrap();
        session.advance_to(300).unwrap();
        let breakdown = session
            .explain(JobId(2))
            .unwrap()
            .expect("started job explains");
        assert_eq!(breakdown.submit, 10);
        assert_eq!(breakdown.start, 300);
        session.seal().unwrap();
    }

    #[test]
    fn status_reports_queue_pressure_live() {
        let session = manual_session("easy.nomax");
        session.submit(&req(1, 1, 0, 32, 1000)).unwrap();
        session.submit(&req(2, 2, 0, 32, 1000)).unwrap();
        session.advance_to(0).unwrap();
        let s = session.status();
        assert_eq!(s.running, 1);
        assert_eq!(s.queued, 1);
        assert_eq!(s.accepted, 2);
        assert!(!s.sealed);
        session.seal().unwrap();
    }
}
