//! The typed wire protocol `fairschedd` speaks.
//!
//! Every request and response is a plain struct with an explicit JSON
//! encoding (via [`json`](crate::json) — the vendored `serde` is a no-op
//! stub). Errors are typed at the API boundary: a submission dated before
//! simulated time already granted is [`ServeError::NonMonotonicSubmit`],
//! an unknown policy id is [`ServeError::UnknownPolicy`] wrapping the
//! workspace's own [`PolicyIdError`] — never a panic, never a silent
//! reorder.

use crate::json::{Json, JsonError};
use fairsched_core::policy::PolicyIdError;
use fairsched_metrics::fairness::peruser::UserFairness;
use fairsched_metrics::fairness::stream::FairnessSnapshot;
use fairsched_sim::{JobRecord, Schedule, SimError};
use fairsched_workload::job::{Job, JobId};
use fairsched_workload::time::Time;
use std::fmt;
use std::fmt::Write as _;

/// A job submission, as posted to `POST /v1/jobs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitRequest {
    /// Trace-unique job id.
    pub id: u32,
    /// Submitting user.
    pub user: u32,
    /// Submitting group.
    pub group: u32,
    /// Submission timestamp (simulated seconds). Must be at or after the
    /// clock horizon already granted to the core.
    pub submit: Time,
    /// Width in nodes.
    pub nodes: u32,
    /// Actual runtime in seconds (the simulated "ground truth").
    pub runtime: Time,
    /// User wall-clock estimate in seconds.
    pub estimate: Time,
}

impl SubmitRequest {
    /// The equivalent workload job.
    pub fn to_job(&self) -> Job {
        Job::new(
            self.id,
            self.user,
            self.group,
            self.submit,
            self.nodes,
            self.runtime,
            self.estimate,
        )
    }

    /// A request replaying a recorded trace job.
    pub fn from_job(job: &Job) -> SubmitRequest {
        SubmitRequest {
            id: job.id.0,
            user: job.user.0,
            group: job.group.0,
            submit: job.submit,
            nodes: job.nodes,
            runtime: job.runtime,
            estimate: job.estimate,
        }
    }

    /// Wire encoding.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::UInt(self.id.into())),
            ("user", Json::UInt(self.user.into())),
            ("group", Json::UInt(self.group.into())),
            ("submit", Json::UInt(self.submit)),
            ("nodes", Json::UInt(self.nodes.into())),
            ("runtime", Json::UInt(self.runtime)),
            ("estimate", Json::UInt(self.estimate)),
        ])
    }

    /// Wire decoding, rejecting missing or mistyped fields.
    pub fn from_json(v: &Json) -> Result<SubmitRequest, ServeError> {
        let field = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ServeError::BadRequest {
                    detail: format!("missing or non-integer field `{name}`"),
                })
        };
        let narrow = |name: &str, value: u64| {
            u32::try_from(value).map_err(|_| ServeError::BadRequest {
                detail: format!("field `{name}` exceeds u32"),
            })
        };
        Ok(SubmitRequest {
            id: narrow("id", field("id")?)?,
            user: narrow("user", field("user")?)?,
            group: narrow("group", field("group")?)?,
            submit: field("submit")?,
            nodes: narrow("nodes", field("nodes")?)?,
            runtime: field("runtime")?,
            estimate: field("estimate")?,
        })
    }
}

/// The acknowledgement for an accepted submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitResponse {
    /// The accepted submission's id.
    pub id: u32,
    /// When it will arrive in the simulated queue.
    pub arrival: Time,
}

impl SubmitResponse {
    /// Wire encoding.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("id", Json::UInt(self.id.into())),
            ("arrival", Json::UInt(self.arrival)),
        ])
    }

    /// Wire decoding.
    pub fn from_json(v: &Json) -> Result<SubmitResponse, ServeError> {
        let get = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ServeError::BadRequest {
                    detail: format!("missing field `{name}`"),
                })
        };
        Ok(SubmitResponse {
            id: get("id")? as u32,
            arrival: get("arrival")?,
        })
    }
}

/// A live view of the running session, from `GET /v1/status`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusResponse {
    /// Policy id the daemon is scheduling under.
    pub policy: String,
    /// Machine size in nodes.
    pub nodes: u32,
    /// Simulated-time frontier.
    pub now: Time,
    /// Clock horizon granted so far (submissions must be dated >= this).
    pub granted: Time,
    /// Jobs waiting in the simulated queue.
    pub queued: usize,
    /// Jobs currently executing.
    pub running: usize,
    /// Free nodes.
    pub free: u32,
    /// Nodes down due to injected faults.
    pub down: u32,
    /// Submissions accepted over the session's lifetime.
    pub accepted: u64,
    /// Submissions finished (completion, kill, or fault).
    pub completed: u64,
    /// When the next simulated event is due, if any.
    pub next_event: Option<Time>,
    /// Whether the session has been sealed (no further submissions).
    pub sealed: bool,
}

impl StatusResponse {
    /// Wire encoding.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("policy", Json::Str(self.policy.clone())),
            ("nodes", Json::UInt(self.nodes.into())),
            ("now", Json::UInt(self.now)),
            ("granted", Json::UInt(self.granted)),
            ("queued", Json::UInt(self.queued as u64)),
            ("running", Json::UInt(self.running as u64)),
            ("free", Json::UInt(self.free.into())),
            ("down", Json::UInt(self.down.into())),
            ("accepted", Json::UInt(self.accepted)),
            ("completed", Json::UInt(self.completed)),
            ("next_event", self.next_event.map_or(Json::Null, Json::UInt)),
            ("sealed", Json::Bool(self.sealed)),
        ])
    }

    /// Wire decoding.
    pub fn from_json(v: &Json) -> Result<StatusResponse, ServeError> {
        let get = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ServeError::BadRequest {
                    detail: format!("missing field `{name}`"),
                })
        };
        Ok(StatusResponse {
            policy: v
                .get("policy")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            nodes: get("nodes")? as u32,
            now: get("now")?,
            granted: get("granted")?,
            queued: get("queued")? as usize,
            running: get("running")? as usize,
            free: get("free")? as u32,
            down: get("down")? as u32,
            accepted: get("accepted")?,
            completed: get("completed")?,
            next_event: v.get("next_event").and_then(Json::as_u64),
            sealed: v.get("sealed").and_then(Json::as_bool).unwrap_or_default(),
        })
    }
}

/// What one grant of simulated time caused, from `POST /v1/advance`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdvanceResponse {
    /// The frontier after the grant.
    pub now: Time,
    /// Jobs started during the grant.
    pub started: u64,
    /// Jobs finished during the grant.
    pub completed: u64,
}

impl AdvanceResponse {
    /// Wire encoding.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("now", Json::UInt(self.now)),
            ("started", Json::UInt(self.started)),
            ("completed", Json::UInt(self.completed)),
        ])
    }

    /// Wire decoding.
    pub fn from_json(v: &Json) -> Result<AdvanceResponse, ServeError> {
        let get = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| ServeError::BadRequest {
                    detail: format!("missing field `{name}`"),
                })
        };
        Ok(AdvanceResponse {
            now: get("now")?,
            started: get("started")?,
            completed: get("completed")?,
        })
    }
}

/// The final summary returned by `POST /v1/seal`.
#[derive(Debug, Clone, PartialEq)]
pub struct SealResponse {
    /// Submissions recorded by the finished schedule.
    pub records: u64,
    /// Makespan of the finished schedule.
    pub makespan: Time,
    /// Utilization of the finished schedule.
    pub utilization: f64,
    /// [`schedule_fingerprint`] of the finished schedule: equal iff the
    /// per-record placements are byte-identical. The recovery tests
    /// compare this across process boundaries.
    pub schedule_fnv: u64,
}

impl SealResponse {
    /// Wire encoding.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("records", Json::UInt(self.records)),
            ("makespan", Json::UInt(self.makespan)),
            ("utilization", Json::Float(self.utilization)),
            ("schedule_fnv", Json::UInt(self.schedule_fnv)),
        ])
    }

    /// Wire decoding.
    pub fn from_json(v: &Json) -> Result<SealResponse, ServeError> {
        Ok(SealResponse {
            records: v.get("records").and_then(Json::as_u64).ok_or_else(|| {
                ServeError::BadRequest {
                    detail: "missing field `records`".into(),
                }
            })?,
            makespan: v.get("makespan").and_then(Json::as_u64).unwrap_or(0),
            utilization: v.get("utilization").and_then(Json::as_f64).unwrap_or(0.0),
            schedule_fnv: v.get("schedule_fnv").and_then(Json::as_u64).unwrap_or(0),
        })
    }
}

/// A canonical fingerprint of a finished schedule: FNV-1a over every
/// record's placement-relevant fields in record order, plus the machine
/// size. Two schedules fingerprint equal exactly when their `records`
/// vectors are field-for-field identical — the byte-identity check the
/// kill-and-recover test asserts across the daemon restart without
/// shipping the whole schedule over the wire.
pub fn schedule_fingerprint(schedule: &Schedule) -> u64 {
    let mut canon = format!("nodes={};", schedule.nodes);
    for r in &schedule.records {
        let _ = write!(
            canon,
            "{},{},{},{},{},{},{},{},{},{},{},{},{};",
            r.id.0,
            r.origin.0,
            r.chunk_index,
            r.user.0,
            r.group.0,
            r.nodes,
            r.submit,
            r.origin_submit,
            r.start,
            r.end,
            r.estimate,
            u8::from(r.killed),
            u8::from(r.interrupted),
        );
    }
    fairsched_core::journal::fnv1a(canon.as_bytes())
}

/// A request to create a named session (`POST /v1/sessions`). Omitted
/// fields fall back to the daemon's defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// The session name (path-safe: `[A-Za-z0-9_-]`, at most 64 chars).
    pub name: String,
    /// Policy id; defaults to the daemon's default-session policy.
    pub policy: Option<String>,
    /// Machine size in nodes; defaults like `policy`.
    pub nodes: Option<u32>,
    /// Fresh-id floor; defaults to 0.
    pub id_floor: Option<u32>,
}

impl SessionSpec {
    /// A spec carrying only a name, inheriting every default.
    pub fn named(name: &str) -> SessionSpec {
        SessionSpec {
            name: name.to_string(),
            policy: None,
            nodes: None,
            id_floor: None,
        }
    }

    /// Wire encoding.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("name", Json::Str(self.name.clone()))];
        if let Some(policy) = &self.policy {
            pairs.push(("policy", Json::Str(policy.clone())));
        }
        if let Some(nodes) = self.nodes {
            pairs.push(("nodes", Json::UInt(nodes.into())));
        }
        if let Some(floor) = self.id_floor {
            pairs.push(("id_floor", Json::UInt(floor.into())));
        }
        Json::obj(pairs)
    }

    /// Wire decoding.
    pub fn from_json(v: &Json) -> Result<SessionSpec, ServeError> {
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::BadRequest {
                detail: "missing field `name`".into(),
            })?
            .to_string();
        let u32_field = |key: &str| -> Result<Option<u32>, ServeError> {
            match v.get(key) {
                None => Ok(None),
                Some(j) => j
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .map(Some)
                    .ok_or_else(|| ServeError::BadRequest {
                        detail: format!("field `{key}` must be a u32"),
                    }),
            }
        };
        Ok(SessionSpec {
            name,
            policy: v
                .get("policy")
                .and_then(Json::as_str)
                .map(ToString::to_string),
            nodes: u32_field("nodes")?,
            id_floor: u32_field("id_floor")?,
        })
    }
}

/// Encodes a finished submission record for `GET /v1/jobs/{id}` and the
/// seal summary.
pub fn record_to_json(r: &JobRecord) -> Json {
    Json::obj([
        ("id", Json::UInt(r.id.0.into())),
        ("origin", Json::UInt(r.origin.0.into())),
        ("user", Json::UInt(r.user.0.into())),
        ("nodes", Json::UInt(r.nodes.into())),
        ("submit", Json::UInt(r.submit)),
        ("start", Json::UInt(r.start)),
        ("end", Json::UInt(r.end)),
        ("killed", Json::Bool(r.killed)),
        ("interrupted", Json::Bool(r.interrupted)),
    ])
}

/// Encodes the live fairness view for `GET /v1/fairness`: every gauge of
/// the [`FairnessSnapshot`], plus the heaviest users' rows (capped at 20
/// — the full table belongs in a sealed report, not a live poll).
pub fn fairness_to_json(snap: &FairnessSnapshot, users: &[UserFairness]) -> Json {
    let rows = users
        .iter()
        .take(20)
        .map(|u| {
            Json::obj([
                ("user", Json::UInt(u.user.0.into())),
                ("jobs", Json::UInt(u.jobs as u64)),
                ("proc_seconds", Json::Float(u.proc_seconds)),
                ("total_miss", Json::Float(u.total_miss)),
                ("unfair_jobs", Json::UInt(u.unfair_jobs as u64)),
                ("mean_wait", Json::Float(u.mean_wait)),
            ])
        })
        .collect();
    Json::obj([
        ("now", Json::UInt(snap.now)),
        ("arrivals", Json::UInt(snap.arrivals)),
        ("started", Json::UInt(snap.started)),
        ("completed", Json::UInt(snap.completed)),
        ("killed", Json::UInt(snap.killed)),
        ("queue_depth", Json::UInt(snap.queue_depth)),
        ("running_jobs", Json::UInt(snap.running_jobs)),
        ("busy_nodes", Json::UInt(snap.busy_nodes)),
        ("utilization", Json::Float(snap.utilization)),
        ("scored", Json::UInt(snap.scored)),
        ("unfair_jobs", Json::UInt(snap.unfair_jobs)),
        ("percent_unfair", Json::Float(snap.percent_unfair)),
        ("total_miss", Json::UInt(snap.total_miss)),
        ("average_miss", Json::Float(snap.average_miss)),
        ("mean_wait", Json::Float(snap.mean_wait)),
        ("mean_slowdown", Json::Float(snap.mean_slowdown)),
        ("live_fst_misses", Json::UInt(snap.live_fst_misses)),
        ("worst_live_miss", Json::UInt(snap.worst_live_miss)),
        ("starvation_age", Json::UInt(snap.starvation_age)),
        ("users", Json::Arr(rows)),
    ])
}

/// Every way a service request can fail, typed. The HTTP layer maps each
/// variant to a status code and a `{"error": kind, "detail": ...}` body;
/// [`ServeError::decode`] maps it back on the client side.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The submission's timestamp is earlier than simulated time already
    /// granted to the core — accepting it would rewrite history.
    NonMonotonicSubmit {
        /// The offending submission.
        job: JobId,
        /// Its timestamp.
        submit: Time,
        /// The horizon it fell behind.
        granted: Time,
    },
    /// The requested policy id is not one the workspace defines.
    UnknownPolicy(PolicyIdError),
    /// A submission reused an id the session has already accepted.
    DuplicateId {
        /// The reused id.
        job: JobId,
    },
    /// The session was sealed; no further submissions or grants.
    Sealed,
    /// The named session does not exist in the registry.
    UnknownSession {
        /// The name that failed to resolve.
        name: String,
    },
    /// A session with this name already exists.
    DuplicateSession {
        /// The contested name.
        name: String,
    },
    /// The session name is not path-safe (`[A-Za-z0-9_-]`, ≤ 64 chars).
    InvalidSessionName {
        /// The rejected name.
        name: String,
    },
    /// The request was malformed (bad JSON, missing fields, unknown
    /// route).
    BadRequest {
        /// What was wrong.
        detail: String,
    },
    /// The simulation core rejected the request (invalid job, invariant
    /// violation, ...).
    Sim(String),
    /// The transport failed (client side).
    Io(String),
}

impl ServeError {
    /// The machine-readable error kind on the wire.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::NonMonotonicSubmit { .. } => "non_monotonic_submit",
            ServeError::UnknownPolicy(_) => "unknown_policy",
            ServeError::DuplicateId { .. } => "duplicate_id",
            ServeError::Sealed => "sealed",
            ServeError::UnknownSession { .. } => "unknown_session",
            ServeError::DuplicateSession { .. } => "duplicate_session",
            ServeError::InvalidSessionName { .. } => "invalid_session_name",
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::Sim(_) => "sim_error",
            ServeError::Io(_) => "io_error",
        }
    }

    /// The HTTP status the kind maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::NonMonotonicSubmit { .. }
            | ServeError::UnknownPolicy(_)
            | ServeError::DuplicateId { .. }
            | ServeError::InvalidSessionName { .. }
            | ServeError::BadRequest { .. } => 400,
            ServeError::UnknownSession { .. } => 404,
            ServeError::Sealed | ServeError::DuplicateSession { .. } => 409,
            ServeError::Sim(_) => 422,
            ServeError::Io(_) => 502,
        }
    }

    /// Wire encoding: `{"error": kind, "detail": human text, ...}`.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("error", Json::Str(self.kind().into())),
            ("detail", Json::Str(self.to_string())),
        ];
        match self {
            ServeError::NonMonotonicSubmit {
                job,
                submit,
                granted,
            } => {
                pairs.push(("job", Json::UInt(job.0.into())));
                pairs.push(("submit", Json::UInt(*submit)));
                pairs.push(("granted", Json::UInt(*granted)));
            }
            ServeError::UnknownPolicy(e) => {
                pairs.push(("policy", Json::Str(e.id.clone())));
            }
            ServeError::DuplicateId { job } => {
                pairs.push(("job", Json::UInt(job.0.into())));
            }
            ServeError::UnknownSession { name }
            | ServeError::DuplicateSession { name }
            | ServeError::InvalidSessionName { name } => {
                pairs.push(("session", Json::Str(name.clone())));
            }
            _ => {}
        }
        Json::obj(pairs)
    }

    /// Reconstructs the typed error from a wire body (client side).
    pub fn decode(v: &Json) -> ServeError {
        fn session_field(v: &Json) -> String {
            v.get("session")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string()
        }
        let detail = v
            .get("detail")
            .and_then(Json::as_str)
            .unwrap_or("unknown error")
            .to_string();
        match v.get("error").and_then(Json::as_str) {
            Some("non_monotonic_submit") => ServeError::NonMonotonicSubmit {
                job: JobId(v.get("job").and_then(Json::as_u64).unwrap_or(0) as u32),
                submit: v.get("submit").and_then(Json::as_u64).unwrap_or(0),
                granted: v.get("granted").and_then(Json::as_u64).unwrap_or(0),
            },
            Some("unknown_policy") => ServeError::UnknownPolicy(PolicyIdError {
                id: v
                    .get("policy")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            }),
            Some("duplicate_id") => ServeError::DuplicateId {
                job: JobId(v.get("job").and_then(Json::as_u64).unwrap_or(0) as u32),
            },
            Some("sealed") => ServeError::Sealed,
            Some("unknown_session") => ServeError::UnknownSession {
                name: session_field(v),
            },
            Some("duplicate_session") => ServeError::DuplicateSession {
                name: session_field(v),
            },
            Some("invalid_session_name") => ServeError::InvalidSessionName {
                name: session_field(v),
            },
            Some("sim_error") => ServeError::Sim(detail),
            Some("io_error") => ServeError::Io(detail),
            _ => ServeError::BadRequest { detail },
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::NonMonotonicSubmit {
                job,
                submit,
                granted,
            } => write!(
                f,
                "{job} submitted at t={submit} but the clock has already \
                 granted t={granted}; online submissions must be monotonic"
            ),
            ServeError::UnknownPolicy(e) => write!(f, "{e}"),
            ServeError::DuplicateId { job } => {
                write!(f, "{job} was already accepted by this session")
            }
            ServeError::Sealed => write!(f, "the session is sealed"),
            ServeError::UnknownSession { name } => {
                write!(f, "no session named `{name}`")
            }
            ServeError::DuplicateSession { name } => {
                write!(f, "a session named `{name}` already exists")
            }
            ServeError::InvalidSessionName { name } => write!(
                f,
                "invalid session name `{name}`: use 1-64 characters from [A-Za-z0-9_-]"
            ),
            ServeError::BadRequest { detail } => write!(f, "bad request: {detail}"),
            ServeError::Sim(detail) => write!(f, "simulation error: {detail}"),
            ServeError::Io(detail) => write!(f, "transport error: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> Self {
        ServeError::Sim(e.to_string())
    }
}

impl From<JsonError> for ServeError {
    fn from(e: JsonError) -> Self {
        ServeError::BadRequest {
            detail: e.to_string(),
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_request_round_trips() {
        let req = SubmitRequest {
            id: 7,
            user: 3,
            group: 1,
            submit: 1234,
            nodes: 16,
            runtime: 600,
            estimate: 900,
        };
        let back = SubmitRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.to_job(), req.to_job());
    }

    #[test]
    fn submit_request_rejects_missing_fields() {
        let v = crate::json::parse(r#"{"id": 1, "user": 2}"#).unwrap();
        let err = SubmitRequest::from_json(&v).unwrap_err();
        assert!(matches!(err, ServeError::BadRequest { .. }));
    }

    #[test]
    fn errors_round_trip_with_kind_and_payload() {
        let cases = [
            ServeError::NonMonotonicSubmit {
                job: JobId(9),
                submit: 10,
                granted: 50,
            },
            ServeError::UnknownPolicy(PolicyIdError {
                id: "no-such.policy".into(),
            }),
            ServeError::DuplicateId { job: JobId(4) },
            ServeError::Sealed,
            ServeError::UnknownSession {
                name: "ghost".into(),
            },
            ServeError::DuplicateSession {
                name: "taken".into(),
            },
            ServeError::InvalidSessionName {
                name: "../etc".into(),
            },
            ServeError::Sim("boom".into()),
        ];
        for e in cases {
            let decoded = ServeError::decode(&e.to_json());
            match (&e, &decoded) {
                (ServeError::Sim(_), ServeError::Sim(d)) => {
                    assert!(d.contains("boom"));
                }
                _ => assert_eq!(decoded, e),
            }
            assert!(e.status() >= 400);
        }
    }

    #[test]
    fn session_specs_round_trip_with_and_without_overrides() {
        let bare = SessionSpec::named("alpha");
        assert_eq!(SessionSpec::from_json(&bare.to_json()).unwrap(), bare);
        let full = SessionSpec {
            name: "beta".into(),
            policy: Some("cplant24.nomax.all".into()),
            nodes: Some(64),
            id_floor: Some(1000),
        };
        assert_eq!(SessionSpec::from_json(&full.to_json()).unwrap(), full);
    }

    #[test]
    fn schedule_fingerprints_differ_on_any_placement_change() {
        use fairsched_core::policy::PolicySpec;
        use fairsched_sim::{simulate, NullObserver, SimOptions};

        let jobs = [
            Job::new(1, 1, 1, 0, 16, 300, 300),
            Job::new(2, 2, 1, 5, 32, 100, 200),
        ];
        let cfg = PolicySpec::parse("easy.nomax").unwrap().sim_config(32);
        let a = simulate(&jobs, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
        let b = simulate(&jobs, &cfg, &mut NullObserver, SimOptions::new()).unwrap();
        assert_eq!(schedule_fingerprint(&a), schedule_fingerprint(&b));
        let mut shifted = a.clone();
        shifted.records[0].start += 1;
        assert_ne!(schedule_fingerprint(&a), schedule_fingerprint(&shifted));
    }

    #[test]
    fn status_response_round_trips() {
        let status = StatusResponse {
            policy: "easy.nomax".into(),
            nodes: 1024,
            now: 77,
            granted: 100,
            queued: 3,
            running: 2,
            free: 1000,
            down: 0,
            accepted: 5,
            completed: 1,
            next_event: Some(120),
            sealed: false,
        };
        assert_eq!(
            StatusResponse::from_json(&status.to_json()).unwrap(),
            status
        );
    }
}
