//! The virtual clock that decides how much simulated time the daemon
//! grants the deterministic core.
//!
//! The core itself never consults a clock ([`SteppedSim`] only processes
//! events up to horizons it is explicitly granted); everything
//! wall-clock-related lives here, so determinism is a property of the
//! *grant sequence*, not of timing. Two modes:
//!
//! * [`ClockMode::Manual`] — simulated time moves only on explicit
//!   `advance` requests. Replay harnesses and the load test use this with
//!   epoch barriers: submit everything dated within an epoch, then grant
//!   the epoch boundary, so concurrent submitters can never race the
//!   clock into rejecting their timestamps.
//! * [`ClockMode::Realtime`] — simulated time tracks wall time times a
//!   speedup factor. `speedup = 1.0` schedules in real time; large factors
//!   replay months of trace in seconds. Interactive `fairsched serve`
//!   defaults to this.
//!
//! [`SteppedSim`]: fairsched_sim::SteppedSim

use fairsched_workload::time::Time;
use std::time::Instant;

/// How simulated time advances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClockMode {
    /// Only explicit `advance` requests move simulated time.
    Manual,
    /// Simulated time follows wall time, scaled by `speedup` simulated
    /// seconds per wall second.
    Realtime {
        /// Simulated seconds per wall-clock second.
        speedup: f64,
    },
}

/// The clock driver: maps wall time to the simulated-time horizon the
/// daemon should grant next.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    mode: ClockMode,
    anchor: Instant,
    /// Simulated time at the anchor.
    base: Time,
}

impl VirtualClock {
    /// A clock starting at simulated time 0.
    pub fn new(mode: ClockMode) -> Self {
        VirtualClock {
            mode,
            anchor: Instant::now(),
            base: 0,
        }
    }

    /// A clock continuing from `base` — recovery adopts the configured
    /// mode after replaying a journal's grant sequence, without rewinding
    /// the horizon already granted.
    pub fn resume_at(mode: ClockMode, base: Time) -> Self {
        VirtualClock {
            mode,
            anchor: Instant::now(),
            base,
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// The horizon the daemon should grant now. Manual clocks never move
    /// on their own, so this is the last [`VirtualClock::jump_to`] value.
    pub fn target(&self) -> Time {
        match self.mode {
            ClockMode::Manual => self.base,
            ClockMode::Realtime { speedup } => {
                let wall = self.anchor.elapsed().as_secs_f64();
                let advanced = (wall * speedup).floor();
                if advanced >= (Time::MAX - self.base) as f64 {
                    Time::MAX
                } else {
                    self.base + advanced as Time
                }
            }
        }
    }

    /// Moves the clock forward to `to` (idempotent for earlier values);
    /// the anchor resets so a realtime clock continues from there.
    pub fn jump_to(&mut self, to: Time) {
        let now = self.target();
        self.base = now.max(to);
        self.anchor = Instant::now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clocks_only_move_on_jumps() {
        let mut clock = VirtualClock::new(ClockMode::Manual);
        assert_eq!(clock.target(), 0);
        clock.jump_to(500);
        assert_eq!(clock.target(), 500);
        // Jumping backwards is a no-op, not a rewind.
        clock.jump_to(100);
        assert_eq!(clock.target(), 500);
    }

    #[test]
    fn realtime_clocks_track_wall_time_scaled() {
        let clock = VirtualClock::new(ClockMode::Realtime { speedup: 1e6 });
        let first = clock.target();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let second = clock.target();
        assert!(second > first, "speedup 1e6 must advance within 5ms");
    }

    #[test]
    fn jumps_keep_realtime_clocks_monotonic() {
        let mut clock = VirtualClock::new(ClockMode::Realtime { speedup: 1000.0 });
        clock.jump_to(1_000_000);
        assert!(clock.target() >= 1_000_000);
    }
}
