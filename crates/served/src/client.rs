//! A blocking client for `fairschedd`, used by the `fairsched submit` /
//! `status` subcommands, the load test, and the replay-equivalence
//! suite.
//!
//! Each client holds **one reused keep-alive connection**: sequential
//! requests share the socket, so a submitter pays the TCP handshake once
//! rather than per request. A stale connection (daemon restarted, idle
//! drop) is detected on failure and retried once on a fresh socket.
//! Cloning a client clones the address, not the connection — clones are
//! how the load test gives every submitter thread its own socket.
//!
//! Errors come back typed: a daemon-side rejection decodes into the same
//! [`ServeError`] variant the daemon constructed (so callers can match on
//! [`ServeError::NonMonotonicSubmit`] across the wire), and transport
//! failures are [`ServeError::Io`].

use crate::api::{
    AdvanceResponse, SealResponse, ServeError, SessionSpec, StatusResponse, SubmitRequest,
    SubmitResponse,
};
use crate::json::{parse, Json};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

/// The reused connection: write half plus its buffered reader (same
/// socket, two fds).
struct ClientConn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A client bound to one daemon address (and optionally one named
/// session — see [`Client::for_session`]).
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    /// Session path prefix: empty for the default session, otherwise
    /// `/v1/sessions/{name}` — `/v1/<rest>` requests are rewritten to
    /// `{prefix}/<rest>`.
    prefix: String,
    conn: Mutex<Option<ClientConn>>,
}

impl Clone for Client {
    /// Clones the address and session binding, **not** the connection:
    /// each clone opens its own socket on first use.
    fn clone(&self) -> Client {
        Client {
            addr: self.addr,
            timeout: self.timeout,
            prefix: self.prefix.clone(),
            conn: Mutex::new(None),
        }
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("addr", &self.addr)
            .field("timeout", &self.timeout)
            .field("prefix", &self.prefix)
            .finish_non_exhaustive()
    }
}

impl Client {
    /// A client for the daemon at `addr`, addressing the default session.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            timeout: Duration::from_secs(30),
            prefix: String::new(),
            conn: Mutex::new(None),
        }
    }

    /// Overrides the per-request socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// A client addressing the named session: every `/v1/*` request is
    /// routed to `/v1/sessions/{name}/*` (except the session-management
    /// and `/metrics` endpoints, which are daemon-wide).
    pub fn for_session(&self, name: &str) -> Client {
        Client {
            addr: self.addr,
            timeout: self.timeout,
            prefix: format!("/v1/sessions/{name}"),
            conn: Mutex::new(None),
        }
    }

    /// Submits one job.
    pub fn submit(&self, req: &SubmitRequest) -> Result<SubmitResponse, ServeError> {
        let body = self.request("POST", "/v1/jobs", Some(&req.to_json().render()))?;
        SubmitResponse::from_json(&body)
    }

    /// The live status view.
    pub fn status(&self) -> Result<StatusResponse, ServeError> {
        let body = self.request("GET", "/v1/status", None)?;
        StatusResponse::from_json(&body)
    }

    /// Grants simulated time up to `to` (manual-clock daemons).
    pub fn advance(&self, to: u64) -> Result<AdvanceResponse, ServeError> {
        let payload = Json::obj([("to", Json::UInt(to))]).render();
        let body = self.request("POST", "/v1/advance", Some(&payload))?;
        AdvanceResponse::from_json(&body)
    }

    /// Nudges a realtime-clock daemon to its current clock target.
    pub fn tick(&self) -> Result<AdvanceResponse, ServeError> {
        let body = self.request("POST", "/v1/tick", None)?;
        AdvanceResponse::from_json(&body)
    }

    /// The live wait decomposition for one job, as raw JSON.
    pub fn explain(&self, id: u32) -> Result<Json, ServeError> {
        self.request("GET", &format!("/v1/explain/{id}"), None)
    }

    /// The live profile report, as raw JSON.
    pub fn profile(&self) -> Result<Json, ServeError> {
        self.request("GET", "/v1/profile", None)
    }

    /// Seals the session: plays out all remaining events.
    pub fn seal(&self) -> Result<SealResponse, ServeError> {
        let body = self.request("POST", "/v1/seal", None)?;
        SealResponse::from_json(&body)
    }

    /// Seals every session and stops the daemon's accept loop.
    pub fn shutdown(&self) -> Result<(), ServeError> {
        self.request("POST", "/v1/shutdown", None).map(|_| ())
    }

    /// Creates a named session on the daemon; unset spec fields inherit
    /// the daemon's template configuration.
    pub fn create_session(&self, spec: &SessionSpec) -> Result<(), ServeError> {
        self.request_unscoped("POST", "/v1/sessions", Some(&spec.to_json().render()))
            .map(|_| ())
    }

    /// Session names live on the daemon, sorted.
    pub fn list_sessions(&self) -> Result<Vec<String>, ServeError> {
        let body = self.request_unscoped("GET", "/v1/sessions", None)?;
        let Some(Json::Arr(rows)) = body.get("sessions") else {
            return Err(ServeError::Io("malformed session list".into()));
        };
        Ok(rows
            .iter()
            .filter_map(|row| row.get("name").and_then(Json::as_str))
            .map(str::to_string)
            .collect())
    }

    /// Deletes a named session (and its journal) on the daemon.
    pub fn delete_session(&self, name: &str) -> Result<(), ServeError> {
        self.request_unscoped("DELETE", &format!("/v1/sessions/{name}"), None)
            .map(|_| ())
    }

    /// The raw Prometheus exposition text from `GET /metrics`.
    pub fn metrics_text(&self) -> Result<String, ServeError> {
        let (status, payload) = self.request_raw("GET", "/metrics", None)?;
        if status >= 400 {
            return Err(ServeError::Io(format!("/metrics returned {status}")));
        }
        Ok(payload)
    }

    /// The live fairness snapshot from `GET /v1/fairness`, as raw JSON.
    pub fn fairness(&self) -> Result<Json, ServeError> {
        self.request("GET", "/v1/fairness", None)
    }

    /// Opens the trace stream and collects every JSONL record until the
    /// daemon seals. Blocks; run it from its own thread to stream live.
    /// The trailing `trace_end` line the daemon appends is stripped; use
    /// [`Client::trace_capture`] to also learn how many lines the daemon
    /// dropped on this subscription.
    pub fn trace_lines(&self) -> Result<Vec<String>, ServeError> {
        self.trace_capture().map(|(lines, _)| lines)
    }

    /// Like [`Client::trace_lines`], but also returns the drop count
    /// from the stream's closing `trace_end` line: the number of trace
    /// records the daemon discarded because this subscriber fell behind
    /// (0 for a complete stream). Trace streams always use their own
    /// dedicated connection — they outlive any request/response cycle.
    pub fn trace_capture(&self) -> Result<(Vec<String>, u64), ServeError> {
        let mut stream = self.connect()?;
        // Streams have no bounded duration; disable the read timeout so
        // a quiet session does not sever the subscription.
        stream.set_read_timeout(None)?;
        let path = self.scoped("/v1/trace");
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: fairschedd\r\nConnection: close\r\n\r\n"
        )?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        // Skip the response headers.
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(ServeError::Io("trace stream closed in headers".into()));
            }
            if line.trim_end().is_empty() {
                break;
            }
        }
        let mut lines = Vec::new();
        let mut dropped = 0u64;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Ok((lines, dropped));
            }
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                continue;
            }
            if let Ok(json) = parse(trimmed) {
                if json.get("trace_end").is_some() {
                    dropped = json.get("dropped").and_then(Json::as_u64).unwrap_or(0);
                    continue;
                }
            }
            lines.push(trimmed.to_string());
        }
    }

    /// Rewrites a default-session route onto this client's session.
    fn scoped(&self, path: &str) -> String {
        match path.strip_prefix("/v1/") {
            Some(rest) if !self.prefix.is_empty() => format!("{}/{rest}", self.prefix),
            _ => path.to_string(),
        }
    }

    fn connect(&self) -> Result<TcpStream, ServeError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        Ok(stream)
    }

    fn request(&self, method: &str, path: &str, body: Option<&str>) -> Result<Json, ServeError> {
        let (status, payload) = self.request_raw(method, &self.scoped(path), body)?;
        Self::decode_body(status, &payload)
    }

    /// A request that ignores the session binding (session management and
    /// daemon-wide endpoints).
    fn request_unscoped(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<Json, ServeError> {
        let (status, payload) = self.request_raw(method, path, body)?;
        Self::decode_body(status, &payload)
    }

    fn decode_body(status: u16, payload: &str) -> Result<Json, ServeError> {
        let json = parse(payload)?;
        if status >= 400 {
            return Err(ServeError::decode(&json));
        }
        Ok(json)
    }

    /// One request/response exchange over the reused connection. On a
    /// transport failure with a cached (possibly stale) connection, the
    /// request is retried exactly once on a fresh socket; failures on a
    /// fresh socket surface immediately.
    fn request_raw(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ServeError> {
        let mut guard = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        let mut reused = guard.is_some();
        loop {
            if guard.is_none() {
                let stream = self.connect()?;
                let reader_stream = stream.try_clone().map_err(ServeError::from)?;
                *guard = Some(ClientConn {
                    stream,
                    reader: BufReader::new(reader_stream),
                });
            }
            let conn = guard.as_mut().expect("just ensured");
            match Self::exchange(conn, method, path, body.unwrap_or("")) {
                Ok((status, payload, close)) => {
                    if close {
                        *guard = None;
                    }
                    return Ok((status, payload));
                }
                Err(e) => {
                    *guard = None;
                    if reused {
                        // The cached connection may simply have gone
                        // stale (daemon restart, idle drop); one retry
                        // on a fresh socket.
                        reused = false;
                        continue;
                    }
                    return Err(e.into());
                }
            }
        }
    }

    /// Writes one request and reads its `Content-Length`-framed
    /// response. Returns the status, body, and whether the daemon asked
    /// to close the connection.
    fn exchange(
        conn: &mut ClientConn,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String, bool)> {
        write!(
            conn.stream,
            "{method} {path} HTTP/1.1\r\nHost: fairschedd\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
        conn.stream.flush()?;
        let mut line = String::new();
        if conn.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
            })?;
        let mut content_length = 0usize;
        let mut close = false;
        loop {
            line.clear();
            if conn.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof in response headers",
                ));
            }
            let header = line.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                } else if name.eq_ignore_ascii_case("connection")
                    && value.trim().eq_ignore_ascii_case("close")
                {
                    close = true;
                }
            }
        }
        let mut payload = vec![0u8; content_length];
        conn.reader.read_exact(&mut payload)?;
        let payload = String::from_utf8(payload).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 response body")
        })?;
        Ok((status, payload, close))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{read_request, write_response};
    use std::net::TcpListener;

    /// The keep-alive contract: N sequential requests from one client
    /// travel over ONE socket. The test server accepts exactly one
    /// connection and serves every request on it — if the client opened
    /// a second socket, its request would hang on the never-accepting
    /// listener and the test would time out.
    #[test]
    fn sequential_requests_reuse_one_socket() {
        const N: usize = 16;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut stream = stream;
            let mut served = 0usize;
            while let Ok(Some(req)) = read_request(&mut reader) {
                assert_eq!(req.path, "/v1/status");
                let body = format!(
                    "{{\"policy\":\"easy.nomax\",\"nodes\":32,\"now\":{served},\
                     \"granted\":0,\"queued\":0,\"running\":0,\"free\":32,\"down\":0,\
                     \"accepted\":0,\"completed\":0,\"sealed\":false}}"
                );
                write_response(&mut stream, 200, "application/json", &body, req.close).unwrap();
                served += 1;
                if req.close || served == N {
                    break;
                }
            }
            served
        });
        let client = Client::new(addr).with_timeout(Duration::from_secs(5));
        for i in 0..N {
            let status = client.status().unwrap();
            assert_eq!(status.now, i as u64, "responses must arrive in order");
        }
        drop(client);
        assert_eq!(server.join().unwrap(), N);
    }

    /// A clone shares nothing with its parent: it opens its own socket.
    #[test]
    fn clones_do_not_share_the_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let mut conns = 0;
            for stream in listener.incoming().take(2) {
                let stream = stream.unwrap();
                conns += 1;
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut stream = stream;
                if let Ok(Some(req)) = read_request(&mut reader) {
                    write_response(&mut stream, 200, "application/json", "{}", req.close).unwrap();
                }
            }
            conns
        });
        let a = Client::new(addr).with_timeout(Duration::from_secs(5));
        let b = a.clone();
        a.profile().unwrap();
        b.profile().unwrap();
        drop((a, b));
        assert_eq!(server.join().unwrap(), 2);
    }

    #[test]
    fn session_scoping_rewrites_paths() {
        let base = Client::new("127.0.0.1:1".parse().unwrap());
        assert_eq!(base.scoped("/v1/jobs"), "/v1/jobs");
        let scoped = base.for_session("team-a");
        assert_eq!(scoped.scoped("/v1/jobs"), "/v1/sessions/team-a/jobs");
        assert_eq!(scoped.scoped("/v1/trace"), "/v1/sessions/team-a/trace");
        assert_eq!(scoped.scoped("/metrics"), "/metrics");
    }
}
