//! A blocking client for `fairschedd`, used by the `fairsched submit` /
//! `status` subcommands, the load test, and the replay-equivalence
//! suite.
//!
//! One request per connection, mirroring the daemon's
//! `Connection: close` model. Errors come back typed: a daemon-side
//! rejection decodes into the same [`ServeError`] variant the daemon
//! constructed (so callers can match on
//! [`ServeError::NonMonotonicSubmit`] across the wire), and transport
//! failures are [`ServeError::Io`].

use crate::api::{
    AdvanceResponse, SealResponse, ServeError, StatusResponse, SubmitRequest, SubmitResponse,
};
use crate::json::{parse, Json};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A client bound to one daemon address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// A client for the daemon at `addr`.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            timeout: Duration::from_secs(30),
        }
    }

    /// Overrides the per-request socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// Submits one job.
    pub fn submit(&self, req: &SubmitRequest) -> Result<SubmitResponse, ServeError> {
        let body = self.request("POST", "/v1/jobs", Some(&req.to_json().render()))?;
        SubmitResponse::from_json(&body)
    }

    /// The live status view.
    pub fn status(&self) -> Result<StatusResponse, ServeError> {
        let body = self.request("GET", "/v1/status", None)?;
        StatusResponse::from_json(&body)
    }

    /// Grants simulated time up to `to` (manual-clock daemons).
    pub fn advance(&self, to: u64) -> Result<AdvanceResponse, ServeError> {
        let payload = Json::obj([("to", Json::UInt(to))]).render();
        let body = self.request("POST", "/v1/advance", Some(&payload))?;
        AdvanceResponse::from_json(&body)
    }

    /// Nudges a realtime-clock daemon to its current clock target.
    pub fn tick(&self) -> Result<AdvanceResponse, ServeError> {
        let body = self.request("POST", "/v1/tick", None)?;
        AdvanceResponse::from_json(&body)
    }

    /// The live wait decomposition for one job, as raw JSON.
    pub fn explain(&self, id: u32) -> Result<Json, ServeError> {
        self.request("GET", &format!("/v1/explain/{id}"), None)
    }

    /// The live profile report, as raw JSON.
    pub fn profile(&self) -> Result<Json, ServeError> {
        self.request("GET", "/v1/profile", None)
    }

    /// Seals the session: plays out all remaining events.
    pub fn seal(&self) -> Result<SealResponse, ServeError> {
        let body = self.request("POST", "/v1/seal", None)?;
        SealResponse::from_json(&body)
    }

    /// Seals (if needed) and stops the daemon's accept loop.
    pub fn shutdown(&self) -> Result<(), ServeError> {
        self.request("POST", "/v1/shutdown", None).map(|_| ())
    }

    /// The raw Prometheus exposition text from `GET /metrics`.
    pub fn metrics_text(&self) -> Result<String, ServeError> {
        let (status, payload) = self.request_raw("GET", "/metrics", None)?;
        if status >= 400 {
            return Err(ServeError::Io(format!("/metrics returned {status}")));
        }
        Ok(payload)
    }

    /// The live fairness snapshot from `GET /v1/fairness`, as raw JSON.
    pub fn fairness(&self) -> Result<Json, ServeError> {
        self.request("GET", "/v1/fairness", None)
    }

    /// Opens the trace stream and collects every JSONL record until the
    /// daemon seals. Blocks; run it from its own thread to stream live.
    /// The trailing `trace_end` line the daemon appends is stripped; use
    /// [`Client::trace_capture`] to also learn how many lines the daemon
    /// dropped on this subscription.
    pub fn trace_lines(&self) -> Result<Vec<String>, ServeError> {
        self.trace_capture().map(|(lines, _)| lines)
    }

    /// Like [`Client::trace_lines`], but also returns the drop count
    /// from the stream's closing `trace_end` line: the number of trace
    /// records the daemon discarded because this subscriber fell behind
    /// (0 for a complete stream).
    pub fn trace_capture(&self) -> Result<(Vec<String>, u64), ServeError> {
        let mut stream = self.connect()?;
        // Streams have no bounded duration; disable the read timeout so
        // a quiet session does not sever the subscription.
        stream.set_read_timeout(None)?;
        write!(
            stream,
            "GET /v1/trace HTTP/1.1\r\nHost: fairschedd\r\nConnection: close\r\n\r\n"
        )?;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        // Skip the response headers.
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Err(ServeError::Io("trace stream closed in headers".into()));
            }
            if line.trim_end().is_empty() {
                break;
            }
        }
        let mut lines = Vec::new();
        let mut dropped = 0u64;
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Ok((lines, dropped));
            }
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                continue;
            }
            if let Ok(json) = parse(trimmed) {
                if json.get("trace_end").is_some() {
                    dropped = json.get("dropped").and_then(Json::as_u64).unwrap_or(0);
                    continue;
                }
            }
            lines.push(trimmed.to_string());
        }
    }

    fn connect(&self) -> Result<TcpStream, ServeError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        Ok(stream)
    }

    fn request(&self, method: &str, path: &str, body: Option<&str>) -> Result<Json, ServeError> {
        let (status, payload) = self.request_raw(method, path, body)?;
        let json = parse(&payload)?;
        if status >= 400 {
            return Err(ServeError::decode(&json));
        }
        Ok(json)
    }

    fn request_raw(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), ServeError> {
        let mut stream = self.connect()?;
        let body = body.unwrap_or("");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: fairschedd\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        )?;
        stream.flush()?;
        let mut response = String::new();
        stream.read_to_string(&mut response)?;
        let (head, payload) = response
            .split_once("\r\n\r\n")
            .ok_or_else(|| ServeError::Io("malformed response".into()))?;
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ServeError::Io("malformed status line".into()))?;
        Ok((status, payload.to_string()))
    }
}
