//! A minimal JSON value model, parser, and emitter.
//!
//! The workspace vendors `serde` as a no-op API stub (no registry access),
//! so the service speaks JSON through this hand-rolled module instead —
//! the same choice `fairsched-obs` made for `TraceRecord::to_jsonl`. The
//! subset is exactly what the wire protocol needs: objects, arrays,
//! strings with `\"`/`\\`/`\n`/`\t`/`\u` escapes, integers up to `u64`,
//! floats, booleans, and null. Emission of integers is exact (no float
//! round-trip), which matters for `Time` values past 2^53.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number that fits a `u64` exactly (the wire protocol's ids,
    /// counts, and times).
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted for deterministic emission.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a `u64`, accepting only exact integers.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                out.push_str(&n.to_string());
            }
            Json::Float(f) => {
                if f.is_finite() {
                    out.push_str(&format!("{f}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What was wrong.
    pub detail: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.at, self.detail)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError {
            at: pos,
            detail: "trailing characters".into(),
        });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(at: usize, detail: impl Into<String>) -> JsonError {
    JsonError {
        at,
        detail: detail.into(),
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{lit}`")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(err(*pos, "expected `:`"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not needed by the protocol;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(&b) => {
                // Copy a whole UTF-8 sequence through.
                let s =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = s.chars().next().expect("nonempty");
                if b < 0x20 {
                    return Err(err(*pos, "unescaped control character"));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
    if let Ok(n) = text.parse::<u64>() {
        return Ok(Json::UInt(n));
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| err(start, "invalid number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_subset() {
        let v = Json::obj([
            ("id", Json::UInt(42)),
            ("name", Json::Str("user \"a\"\n".into())),
            ("ok", Json::Bool(true)),
            ("ratio", Json::Float(0.5)),
            ("items", Json::Arr(vec![Json::UInt(1), Json::Null])),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn large_times_survive_exactly() {
        let t = u64::MAX - 1;
        let v = Json::obj([("t", Json::UInt(t))]);
        let back = parse(&v.render()).unwrap();
        assert_eq!(back.get("t").and_then(Json::as_u64), Some(t));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\":}", "01x", "{\"a\":1} trailing"] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"jobs":[{"id":1,"nodes":4},{"id":2,"nodes":8}],"policy":"easy.nomax"}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("jobs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("policy").and_then(Json::as_str), Some("easy.nomax"));
    }
}
