//! The per-session submission journal: the durability layer behind
//! `fairschedd --recover`.
//!
//! Every accepted submission, every clock grant, and the seal are
//! appended — in the exact order the session mutex serialized them — to
//! `DIR/<name>.journal.jsonl`, using the shared checksummed framing in
//! [`fairsched_core::journal`] (the same machinery behind the sweep's
//! crash-safe results journal). Rows are flushed to the kernel before
//! the request is acknowledged, so *acked implies journaled*: a SIGKILL
//! can only lose submissions the client never saw accepted, and those
//! the client simply resubmits ([`ServeError::DuplicateId`] on a
//! resubmission means it survived after all). The fsync is batched — the
//! session commits one `sync` per coalesced submission batch — so a
//! power cut loses at most one batch, never a torn prefix.
//!
//! Because the journal is an ordered prefix of the session's accepted
//! history and the stepped core is deterministic, replaying the rows
//! through a fresh [`Session`](crate::session::Session) reconstructs a
//! state from which the sealed schedule comes out *byte-identical* to
//! the uninterrupted run — the crate's replay-equivalence property
//! extended across a process boundary.

use crate::api::{ServeError, SubmitRequest};
use crate::clock::ClockMode;
use crate::session::SessionConfig;
use fairsched_core::journal::{
    escape, json_f64, json_str, json_u32, json_u64, replay_lines, LineWriter,
};
use fairsched_workload::time::Time;
use std::path::{Path, PathBuf};

/// The journal schema version this build writes.
pub const SCHEMA_VERSION: u64 = 1;

/// Whether `name` is safe as a session name (and thus a journal file
/// stem): non-empty, at most 64 chars, `[A-Za-z0-9_-]` only. This is the
/// registry's validation rule too — route parsing and path construction
/// share it.
pub fn valid_session_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// The journal file for session `name` under `dir`.
pub fn journal_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.journal.jsonl"))
}

/// Session journals found under `dir`, as `(name, path)` pairs sorted by
/// name. Files that do not follow the `<name>.journal.jsonl` naming (or
/// whose stem is not a valid session name) are ignored.
pub fn scan_dir(dir: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(file) = path.file_name().and_then(|f| f.to_str()) else {
            continue;
        };
        let Some(name) = file.strip_suffix(".journal.jsonl") else {
            continue;
        };
        if valid_session_name(name) {
            found.push((name.to_string(), path));
        }
    }
    found.sort();
    Ok(found)
}

/// One replayed journal row, in file order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEvent {
    /// An accepted submission.
    Submit(SubmitRequest),
    /// A clock grant up to the given horizon.
    Grant(Time),
    /// The session sealed.
    Seal,
}

/// What a journal replay recovered: the session's configuration from the
/// header plus its accepted history in order.
#[derive(Debug, Clone)]
pub struct RecoveredSession {
    /// The session name the header recorded.
    pub name: String,
    /// The configuration to rebuild the session with.
    pub config: SessionConfig,
    /// Accepted history in the order the live session serialized it.
    pub events: Vec<JournalEvent>,
    /// Lines skipped (torn writes, corruption, unknown versions/kinds).
    pub skipped: usize,
}

fn clock_body(mode: ClockMode) -> String {
    match mode {
        ClockMode::Manual => "\"clock\":\"manual\",\"speedup\":0".into(),
        ClockMode::Realtime { speedup } => {
            format!("\"clock\":\"realtime\",\"speedup\":{speedup}")
        }
    }
}

fn header_body(name: &str, cfg: &SessionConfig) -> String {
    format!(
        "{{\"v\":{SCHEMA_VERSION},\"kind\":\"header\",\"session\":\"{}\",\"policy\":\"{}\",\
         \"nodes\":{},\"id_floor\":{},\"traced\":{},{}",
        escape(name),
        escape(&cfg.policy),
        cfg.nodes,
        cfg.id_floor,
        u8::from(cfg.traced),
        clock_body(cfg.clock),
    )
}

fn submit_body(req: &SubmitRequest) -> String {
    format!(
        "{{\"v\":{SCHEMA_VERSION},\"kind\":\"submit\",\"id\":{},\"user\":{},\"group\":{},\
         \"submit\":{},\"nodes\":{},\"runtime\":{},\"estimate\":{}",
        req.id, req.user, req.group, req.submit, req.nodes, req.runtime, req.estimate,
    )
}

/// The write half: owned by one [`Session`](crate::session::Session),
/// called only under the session mutex, so row order in the file is
/// exactly the order the session applied events to the core.
pub struct SessionJournal {
    out: LineWriter,
    uncommitted: bool,
}

impl SessionJournal {
    /// Creates (truncating) the journal for session `name` under `dir`
    /// and durably writes the header.
    pub fn create(dir: &Path, name: &str, cfg: &SessionConfig) -> std::io::Result<SessionJournal> {
        std::fs::create_dir_all(dir)?;
        let mut out = LineWriter::create(&journal_path(dir, name))?;
        out.write_sealed(&header_body(name, cfg))?;
        out.sync()?;
        Ok(SessionJournal {
            out,
            uncommitted: false,
        })
    }

    /// Reopens an existing journal for appending (recovery: the replayed
    /// history stays, new rows extend it).
    pub fn append(path: &Path) -> std::io::Result<SessionJournal> {
        Ok(SessionJournal {
            out: LineWriter::append(path)?,
            uncommitted: false,
        })
    }

    /// Buffers one accepted submission. Returns bytes written.
    pub fn append_submit(&mut self, req: &SubmitRequest) -> std::io::Result<u64> {
        self.uncommitted = true;
        self.out.write_sealed(&submit_body(req))
    }

    /// Buffers one clock grant. Returns bytes written.
    pub fn append_grant(&mut self, to: Time) -> std::io::Result<u64> {
        self.uncommitted = true;
        self.out.write_sealed(&format!(
            "{{\"v\":{SCHEMA_VERSION},\"kind\":\"grant\",\"to\":{to}"
        ))
    }

    /// Buffers the seal marker. Returns bytes written.
    pub fn append_seal(&mut self) -> std::io::Result<u64> {
        self.uncommitted = true;
        self.out
            .write_sealed(&format!("{{\"v\":{SCHEMA_VERSION},\"kind\":\"seal\""))
    }

    /// Commits everything buffered since the last commit: one flush (the
    /// SIGKILL guarantee) plus one fsync (the power-cut guarantee) for
    /// the whole batch. Returns whether anything was pending — the
    /// caller's `served_journal_batches` counter only ticks for real
    /// batches.
    pub fn commit(&mut self) -> std::io::Result<bool> {
        if !self.uncommitted {
            return Ok(false);
        }
        self.out.sync()?;
        self.uncommitted = false;
        Ok(true)
    }
}

/// Replays one session journal: header into a [`SessionConfig`], rows
/// into ordered [`JournalEvent`]s. Torn, corrupt, and unknown lines are
/// skipped with a warning (counted in
/// [`RecoveredSession::skipped`]). `Ok(None)` when the file carries no
/// valid header — nothing to recover.
pub fn replay(path: &Path) -> Result<Option<RecoveredSession>, ServeError> {
    let mut recovered: Option<RecoveredSession> = None;
    let mut events = Vec::new();
    let skipped = replay_lines(
        path,
        SCHEMA_VERSION,
        "the row is lost to recovery",
        |body| match json_str(body, "kind").as_deref() {
            Some("header") => {
                let parse = || -> Option<RecoveredSession> {
                    let name = json_str(body, "session")?;
                    if !valid_session_name(&name) {
                        return None;
                    }
                    let clock = match json_str(body, "clock")?.as_str() {
                        "manual" => ClockMode::Manual,
                        "realtime" => ClockMode::Realtime {
                            speedup: json_f64(body, "speedup")?,
                        },
                        _ => return None,
                    };
                    Some(RecoveredSession {
                        name,
                        config: SessionConfig {
                            policy: json_str(body, "policy")?,
                            nodes: json_u32(body, "nodes")?,
                            clock,
                            traced: json_u64(body, "traced")? != 0,
                            id_floor: json_u32(body, "id_floor")?,
                            ..SessionConfig::default()
                        },
                        events: Vec::new(),
                        skipped: 0,
                    })
                };
                match parse() {
                    Some(r) if recovered.is_none() => {
                        recovered = Some(r);
                        Ok(())
                    }
                    Some(_) => Err("duplicate header".into()),
                    None => Err("malformed header".into()),
                }
            }
            Some("submit") => {
                let parse = || -> Option<SubmitRequest> {
                    Some(SubmitRequest {
                        id: json_u32(body, "id")?,
                        user: json_u32(body, "user")?,
                        group: json_u32(body, "group")?,
                        submit: json_u64(body, "submit")?,
                        nodes: json_u32(body, "nodes")?,
                        runtime: json_u64(body, "runtime")?,
                        estimate: json_u64(body, "estimate")?,
                    })
                };
                match parse() {
                    Some(req) => {
                        events.push(JournalEvent::Submit(req));
                        Ok(())
                    }
                    None => Err("malformed submit row".into()),
                }
            }
            Some("grant") => match json_u64(body, "to") {
                Some(to) => {
                    events.push(JournalEvent::Grant(to));
                    Ok(())
                }
                None => Err("malformed grant row".into()),
            },
            Some("seal") => {
                events.push(JournalEvent::Seal);
                Ok(())
            }
            _ => Err("unknown record kind".into()),
        },
    )?;
    Ok(recovered.map(|mut r| {
        r.events = events;
        r.skipped = skipped;
        r
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("fairsched-served-journal-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn req(id: u32, submit: Time) -> SubmitRequest {
        SubmitRequest {
            id,
            user: 1,
            group: 1,
            submit,
            nodes: 4,
            runtime: 100,
            estimate: 120,
        }
    }

    #[test]
    fn session_names_are_validated_for_path_safety() {
        assert!(valid_session_name("default"));
        assert!(valid_session_name("team-a_2"));
        assert!(!valid_session_name(""));
        assert!(!valid_session_name("../escape"));
        assert!(!valid_session_name("a/b"));
        assert!(!valid_session_name("dot.dot"));
        assert!(!valid_session_name(&"x".repeat(65)));
    }

    #[test]
    fn history_round_trips_in_order() {
        let dir = tmp_dir("roundtrip");
        let cfg = SessionConfig {
            policy: "cplant24.nomax.all".into(),
            nodes: 64,
            id_floor: 100,
            ..Default::default()
        };
        let mut j = SessionJournal::create(&dir, "alpha", &cfg).unwrap();
        j.append_submit(&req(1, 0)).unwrap();
        j.append_grant(50).unwrap();
        j.append_submit(&req(2, 50)).unwrap();
        j.append_seal().unwrap();
        assert!(j.commit().unwrap());
        assert!(!j.commit().unwrap(), "nothing pending after a commit");
        drop(j);

        let r = replay(&journal_path(&dir, "alpha")).unwrap().unwrap();
        assert_eq!(r.name, "alpha");
        assert_eq!(r.config.policy, "cplant24.nomax.all");
        assert_eq!(r.config.nodes, 64);
        assert_eq!(r.config.id_floor, 100);
        assert_eq!(r.skipped, 0);
        assert_eq!(
            r.events,
            vec![
                JournalEvent::Submit(req(1, 0)),
                JournalEvent::Grant(50),
                JournalEvent::Submit(req(2, 50)),
                JournalEvent::Seal,
            ]
        );
    }

    #[test]
    fn realtime_clock_mode_survives_the_header() {
        let dir = tmp_dir("clock");
        let cfg = SessionConfig {
            clock: ClockMode::Realtime { speedup: 250.5 },
            ..Default::default()
        };
        SessionJournal::create(&dir, "rt", &cfg).unwrap();
        let r = replay(&journal_path(&dir, "rt")).unwrap().unwrap();
        assert_eq!(r.config.clock, ClockMode::Realtime { speedup: 250.5 });
    }

    #[test]
    fn a_torn_tail_loses_only_the_unacked_row() {
        let dir = tmp_dir("torn");
        let mut j = SessionJournal::create(&dir, "t", &SessionConfig::default()).unwrap();
        j.append_submit(&req(1, 0)).unwrap();
        j.append_submit(&req(2, 10)).unwrap();
        j.commit().unwrap();
        drop(j);
        let path = journal_path(&dir, "t");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 20]).unwrap();
        let mut got = None;
        fairsched_obs::log::capture(|| got = Some(replay(&path).unwrap().unwrap()));
        let r = got.unwrap();
        assert_eq!(r.events, vec![JournalEvent::Submit(req(1, 0))]);
        assert_eq!(r.skipped, 1);
    }

    #[test]
    fn headerless_files_recover_nothing() {
        let dir = tmp_dir("headerless");
        let path = dir.join("x.journal.jsonl");
        std::fs::write(&path, "not a journal\n").unwrap();
        let mut got = None;
        fairsched_obs::log::capture(|| got = Some(replay(&path)));
        assert!(got.unwrap().unwrap().is_none());
        assert!(replay(&dir.join("missing.journal.jsonl"))
            .unwrap()
            .is_none());
    }

    #[test]
    fn scan_finds_only_well_named_journals() {
        let dir = tmp_dir("scan");
        SessionJournal::create(&dir, "beta", &SessionConfig::default()).unwrap();
        SessionJournal::create(&dir, "alpha", &SessionConfig::default()).unwrap();
        std::fs::write(dir.join("notes.txt"), "x").unwrap();
        std::fs::write(dir.join(".journal.jsonl"), "x").unwrap();
        let found = scan_dir(&dir).unwrap();
        let names: Vec<&str> = found.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
    }
}
