//! `fairschedd`'s metric surface: every counter, gauge, and histogram
//! the daemon exports at `GET /metrics`.
//!
//! The shape follows Prometheus conventions — `*_total` counters per
//! route, one latency histogram per route, and gauges for everything the
//! scheduler knows about itself (queue pressure, clock lag, live
//! fairness). All route series are registered **up front**, so a scrape
//! taken before the first request still shows every family with zeroed
//! series: dashboards and the CI smoke check can assert on shape without
//! racing traffic.
//!
//! Request accounting is two relaxed atomic adds plus a histogram record
//! on the connection thread. Gauges are refreshed lazily, at scrape time,
//! from one session status + fairness snapshot — the scheduling path
//! never updates a gauge.

use crate::session::Session;
use fairsched_obs::registry::{Counter, Gauge, HistogramHandle, Registry};

/// Route labels the daemon exports, one per route in the daemon's table
/// (parameterized paths collapse onto one label). `other` absorbs
/// unroutable paths so probes and typos are visible rather than silently
/// unlabeled.
pub const ROUTES: &[&str] = &[
    "/metrics",
    "/v1/advance",
    "/v1/explain/{id}",
    "/v1/fairness",
    "/v1/jobs",
    "/v1/jobs/{id}",
    "/v1/profile",
    "/v1/seal",
    "/v1/sessions",
    "/v1/sessions/{name}",
    "/v1/shutdown",
    "/v1/status",
    "/v1/tick",
    "/v1/trace",
    "other",
];

/// Collapses a request path onto its route label. Session-prefixed paths
/// (`/v1/sessions/{name}/jobs`, ...) collapse onto the label of the route
/// inside the session, so the label set stays bounded no matter how many
/// sessions exist.
pub fn route_label(path: &str) -> &'static str {
    if let Some(rest) = path.strip_prefix("/v1/explain/") {
        if !rest.is_empty() {
            return "/v1/explain/{id}";
        }
    }
    if let Some(rest) = path.strip_prefix("/v1/jobs/") {
        if !rest.is_empty() {
            return "/v1/jobs/{id}";
        }
    }
    if let Some(rest) = path.strip_prefix("/v1/sessions/") {
        match rest.find('/') {
            // `/v1/sessions/{name}/<route>` carries the inner route.
            Some(slash) if slash + 1 < rest.len() => {
                return route_label(&format!("/v1/{}", &rest[slash + 1..]))
            }
            _ if !rest.is_empty() => return "/v1/sessions/{name}",
            _ => {}
        }
    }
    ROUTES
        .iter()
        .find(|&&r| r == path && r != "other")
        .copied()
        .unwrap_or("other")
}

struct RouteMetrics {
    requests: Counter,
    errors: Counter,
    latency_ns: HistogramHandle,
}

/// The daemon's registered metric handles. One instance per [`Session`];
/// shared across connection threads by reference.
pub struct ServiceMetrics {
    registry: Registry,
    routes: Vec<(&'static str, RouteMetrics)>,
    /// Trace lines dropped because a subscriber's buffer was full.
    pub trace_lines_dropped: Counter,
    /// Subscribers severed for falling behind.
    pub trace_subscribers_dropped: Counter,
    /// Bytes appended to session durability journals.
    pub journal_bytes: Counter,
    /// Journal commit batches fsynced (one per submission batch, grant,
    /// or seal that had rows to flush).
    pub journal_batches: Counter,
    /// Pool workers currently serving a request (not parked on the
    /// accept queue).
    pub pool_workers_busy: Gauge,
    /// Connections waiting on the accept queue for a free worker.
    pub accept_queue_depth: Gauge,
    // Session gauges, refreshed at scrape time.
    jobs_queued: Gauge,
    jobs_running: Gauge,
    jobs_accepted: Gauge,
    jobs_completed: Gauge,
    nodes_free: Gauge,
    nodes_busy: Gauge,
    clock_lag: Gauge,
    sealed: Gauge,
    steps: Gauge,
    utilization: Gauge,
    percent_unfair: Gauge,
    total_miss_seconds: Gauge,
    live_fst_misses: Gauge,
    worst_live_miss_seconds: Gauge,
    starvation_age_seconds: Gauge,
    mean_wait_seconds: Gauge,
    mean_slowdown: Gauge,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// Registers every family and series the daemon exports.
    pub fn new() -> ServiceMetrics {
        let registry = Registry::new();
        let routes = ROUTES
            .iter()
            .map(|&route| {
                let labels = [("route", route)];
                (
                    route,
                    RouteMetrics {
                        requests: registry.counter(
                            "fairschedd_http_requests_total",
                            "HTTP requests received, by route.",
                            &labels,
                        ),
                        errors: registry.counter(
                            "fairschedd_http_errors_total",
                            "HTTP responses with status >= 400, by route.",
                            &labels,
                        ),
                        latency_ns: registry.histogram(
                            "fairschedd_http_request_duration_ns",
                            "Wall time from request parse to response write, nanoseconds.",
                            &labels,
                        ),
                    },
                )
            })
            .collect();
        let gauge = |name: &str, help: &str| registry.gauge(name, help, &[]);
        ServiceMetrics {
            trace_lines_dropped: registry.counter(
                "fairschedd_trace_lines_dropped_total",
                "Trace lines undelivered because a subscriber's buffer was full.",
                &[],
            ),
            trace_subscribers_dropped: registry.counter(
                "fairschedd_trace_subscribers_dropped_total",
                "Trace subscribers severed for falling behind.",
                &[],
            ),
            journal_bytes: registry.counter(
                "served_journal_bytes",
                "Bytes appended to session durability journals.",
                &[],
            ),
            journal_batches: registry.counter(
                "served_journal_batches",
                "Journal commit batches fsynced.",
                &[],
            ),
            pool_workers_busy: registry.gauge(
                "served_pool_workers_busy",
                "Pool workers currently serving a request.",
                &[],
            ),
            accept_queue_depth: registry.gauge(
                "served_accept_queue_depth",
                "Connections queued for a free pool worker.",
                &[],
            ),
            jobs_queued: gauge("fairschedd_jobs_queued", "Jobs waiting in the queue."),
            jobs_running: gauge("fairschedd_jobs_running", "Jobs currently running."),
            jobs_accepted: gauge(
                "fairschedd_jobs_accepted",
                "Submissions accepted this session.",
            ),
            jobs_completed: gauge(
                "fairschedd_jobs_completed",
                "Submissions finished this session.",
            ),
            nodes_free: gauge("fairschedd_nodes_free", "Nodes currently free."),
            nodes_busy: gauge(
                "fairschedd_nodes_busy",
                "Nodes currently occupied by running jobs.",
            ),
            clock_lag: gauge(
                "fairschedd_clock_lag_seconds",
                "Granted clock horizon minus the simulated-time frontier.",
            ),
            sealed: gauge("fairschedd_sealed", "1 once the session has sealed."),
            steps: gauge(
                "fairschedd_session_steps",
                "Core step events processed (submissions + grant batches).",
            ),
            utilization: gauge(
                "fairschedd_utilization",
                "Busy node-seconds over capacity since the first start (live).",
            ),
            percent_unfair: gauge(
                "fairschedd_fairness_percent_unfair",
                "Fraction of started jobs that missed their fair start time.",
            ),
            total_miss_seconds: gauge(
                "fairschedd_fairness_total_miss_seconds",
                "Total fair-start miss accumulated, seconds.",
            ),
            live_fst_misses: gauge(
                "fairschedd_fairness_live_misses",
                "Queued jobs currently past their fair start time.",
            ),
            worst_live_miss_seconds: gauge(
                "fairschedd_fairness_worst_live_miss_seconds",
                "Largest current fair-start overshoot among queued jobs, seconds.",
            ),
            starvation_age_seconds: gauge(
                "fairschedd_starvation_age_seconds",
                "Age of the oldest queued job, seconds.",
            ),
            mean_wait_seconds: gauge(
                "fairschedd_mean_wait_seconds",
                "Mean queue wait over finished submissions, seconds.",
            ),
            mean_slowdown: gauge(
                "fairschedd_mean_slowdown",
                "Mean bounded slowdown over finished submissions.",
            ),
            routes,
            registry,
        }
    }

    /// Records one handled request: its route, response status, and wall
    /// time in nanoseconds.
    pub fn observe_request(&self, route: &str, status: u16, elapsed_ns: u64) {
        let m = self
            .routes
            .iter()
            .find(|(r, _)| *r == route)
            .map(|(_, m)| m)
            .unwrap_or_else(|| {
                &self
                    .routes
                    .last()
                    .expect("ROUTES is non-empty; `other` is last")
                    .1
            });
        m.requests.inc();
        if status >= 400 {
            m.errors.inc();
        }
        m.latency_ns.record(elapsed_ns);
    }

    /// Refreshes every gauge from the session and renders the full
    /// exposition text. This is `GET /metrics`.
    pub fn render(&self, session: &Session) -> String {
        let status = session.status();
        let (snap, _) = session.fairness();
        self.jobs_queued.set_u64(status.queued as u64);
        self.jobs_running.set_u64(status.running as u64);
        self.jobs_accepted.set_u64(status.accepted);
        self.jobs_completed.set_u64(status.completed);
        self.nodes_free.set_u64(u64::from(status.free));
        self.nodes_busy.set_u64(snap.busy_nodes);
        self.clock_lag
            .set_u64(status.granted.saturating_sub(status.now));
        self.sealed.set_u64(u64::from(status.sealed));
        self.steps.set_u64(session.steps());
        self.utilization.set(snap.utilization);
        self.percent_unfair.set(snap.percent_unfair);
        self.total_miss_seconds.set_u64(snap.total_miss);
        self.live_fst_misses.set_u64(snap.live_fst_misses);
        self.worst_live_miss_seconds.set_u64(snap.worst_live_miss);
        self.starvation_age_seconds.set_u64(snap.starvation_age);
        self.mean_wait_seconds.set(snap.mean_wait);
        self.mean_slowdown.set(snap.mean_slowdown);
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fairsched_obs::registry::parse_exposition;

    #[test]
    fn route_labels_collapse_parameterized_paths() {
        assert_eq!(route_label("/v1/jobs"), "/v1/jobs");
        assert_eq!(route_label("/v1/jobs/42"), "/v1/jobs/{id}");
        assert_eq!(route_label("/v1/explain/7"), "/v1/explain/{id}");
        assert_eq!(route_label("/metrics"), "/metrics");
        assert_eq!(route_label("/v1/nonsense"), "other");
        assert_eq!(route_label("/"), "other");
        assert_eq!(route_label("other"), "other");
    }

    #[test]
    fn every_route_has_series_before_any_traffic() {
        let metrics = ServiceMetrics::new();
        let session = Session::new(Default::default()).unwrap();
        let text = metrics.render(&session);
        let samples = parse_exposition(&text).unwrap();
        for route in ROUTES {
            for family in [
                "fairschedd_http_requests_total",
                "fairschedd_http_errors_total",
                "fairschedd_http_request_duration_ns_count",
            ] {
                assert!(
                    samples
                        .iter()
                        .any(|s| s.name == family && s.label("route") == Some(route)),
                    "{family} missing for {route}"
                );
            }
            // The mandatory +Inf latency bucket exists even with zero
            // observations — the CI smoke check asserts on this.
            assert!(
                samples.iter().any(|s| {
                    s.name == "fairschedd_http_request_duration_ns_bucket"
                        && s.label("route") == Some(route)
                        && s.label("le") == Some("+Inf")
                }),
                "latency buckets missing for {route}"
            );
        }
    }

    #[test]
    fn request_observations_land_on_their_route() {
        let metrics = ServiceMetrics::new();
        metrics.observe_request("/v1/jobs", 200, 1_000);
        metrics.observe_request("/v1/jobs", 409, 2_000);
        metrics.observe_request("/definitely/not/a/route", 400, 10);
        let session = Session::new(Default::default()).unwrap();
        let samples = parse_exposition(&metrics.render(&session)).unwrap();
        let find = |name: &str, route: &str| {
            samples
                .iter()
                .find(|s| s.name == name && s.label("route") == Some(route))
                .map(|s| s.value)
        };
        assert_eq!(
            find("fairschedd_http_requests_total", "/v1/jobs"),
            Some(2.0)
        );
        assert_eq!(find("fairschedd_http_errors_total", "/v1/jobs"), Some(1.0));
        assert_eq!(find("fairschedd_http_requests_total", "other"), Some(1.0));
        assert_eq!(find("fairschedd_http_errors_total", "other"), Some(1.0));
    }
}
