//! `fairschedd` — the online scheduling daemon.
//!
//! ```text
//! fairschedd [--port N] [--port-file PATH] [--policy ID] [--nodes N]
//!            [--speedup X | --manual] [--no-trace] [--id-floor N]
//! ```
//!
//! Binds `127.0.0.1:<port>` (port 0 = OS-assigned; the resolved port is
//! printed and, with `--port-file`, written to a file for scripts to
//! pick up). Runs until `POST /v1/shutdown`.

use fairsched_served::clock::ClockMode;
use fairsched_served::session::SessionConfig;
use fairsched_served::Daemon;
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: fairschedd [--port N] [--port-file PATH] [--policy ID] \
         [--nodes N] [--speedup X | --manual] [--no-trace] [--id-floor N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut port: u16 = 0;
    let mut port_file: Option<String> = None;
    let mut cfg = SessionConfig {
        // Interactive serving defaults to real time; scripts pass
        // --manual or a large --speedup.
        clock: ClockMode::Realtime { speedup: 1.0 },
        ..SessionConfig::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("fairschedd: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--port" => {
                port = value("--port").parse().unwrap_or_else(|_| usage());
            }
            "--port-file" => port_file = Some(value("--port-file")),
            "--policy" => cfg.policy = value("--policy"),
            "--nodes" => {
                cfg.nodes = value("--nodes").parse().unwrap_or_else(|_| usage());
            }
            "--speedup" => {
                let speedup: f64 = value("--speedup").parse().unwrap_or_else(|_| usage());
                if !(speedup.is_finite() && speedup > 0.0) {
                    eprintln!("fairschedd: --speedup must be a positive number");
                    std::process::exit(2);
                }
                cfg.clock = ClockMode::Realtime { speedup };
            }
            "--manual" => cfg.clock = ClockMode::Manual,
            "--no-trace" => cfg.traced = false,
            "--id-floor" => {
                cfg.id_floor = value("--id-floor").parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("fairschedd: unknown flag {other}");
                usage();
            }
        }
    }

    let clock = cfg.clock;
    let mut daemon = match Daemon::start(&format!("127.0.0.1:{port}"), cfg) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("fairschedd: {e}");
            std::process::exit(1);
        }
    };
    let addr = daemon.addr();
    println!("fairschedd listening on {addr}");
    if let Some(path) = port_file {
        let written = std::fs::File::create(&path).and_then(|mut f| writeln!(f, "{}", addr.port()));
        if let Err(e) = written {
            eprintln!("fairschedd: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }

    // Realtime clocks need a heartbeat: events only play out when time is
    // granted, so tick until a shutdown request stops the accept loop.
    let session = std::sync::Arc::clone(daemon.session());
    if let ClockMode::Realtime { .. } = clock {
        std::thread::spawn(move || loop {
            std::thread::sleep(std::time::Duration::from_millis(20));
            if session.tick().is_err() {
                // Sealed: nothing left to drive.
                break;
            }
        });
    }

    // Park until shutdown flips the stop flag and unblocks the accept
    // loop; joining the accept thread is exactly Daemon::shutdown's job,
    // so wait for the flag by polling the session's sealed state.
    loop {
        std::thread::sleep(std::time::Duration::from_millis(50));
        if daemon.stopped() {
            break;
        }
    }
    daemon.shutdown();
    println!("fairschedd: stopped");
}
