//! `fairschedd` — the online scheduling daemon.
//!
//! ```text
//! fairschedd [--port N] [--port-file PATH] [--policy ID] [--nodes N]
//!            [--speedup X | --manual] [--no-trace] [--id-floor N]
//!            [--workers N] [--queue-capacity N]
//!            [--journal-dir DIR] [--recover]
//! ```
//!
//! Binds `127.0.0.1:<port>` (port 0 = OS-assigned; the resolved port is
//! printed and, with `--port-file`, written to a file for scripts to
//! pick up). Runs until `POST /v1/shutdown`.
//!
//! `--journal-dir DIR` turns on durability: every accepted submission
//! and clock grant appends to a checksummed per-session journal under
//! `DIR`. After a crash (even SIGKILL), `--recover` with the same
//! `--journal-dir` replays the journals and continues every session
//! exactly where its acknowledged history ends — the recovered schedule
//! is byte-identical to an uninterrupted run.

use fairsched_served::clock::ClockMode;
use fairsched_served::daemon::DaemonConfig;
use fairsched_served::session::SessionConfig;
use fairsched_served::Daemon;
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: fairschedd [--port N] [--port-file PATH] [--policy ID] \
         [--nodes N] [--speedup X | --manual] [--no-trace] [--id-floor N] \
         [--workers N] [--queue-capacity N] [--journal-dir DIR] [--recover]"
    );
    std::process::exit(2);
}

fn main() {
    let mut port: u16 = 0;
    let mut port_file: Option<String> = None;
    let mut cfg = DaemonConfig::new(SessionConfig {
        // Interactive serving defaults to real time; scripts pass
        // --manual or a large --speedup.
        clock: ClockMode::Realtime { speedup: 1.0 },
        ..SessionConfig::default()
    });

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("fairschedd: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--port" => {
                port = value("--port").parse().unwrap_or_else(|_| usage());
            }
            "--port-file" => port_file = Some(value("--port-file")),
            "--policy" => cfg.session.policy = value("--policy"),
            "--nodes" => {
                cfg.session.nodes = value("--nodes").parse().unwrap_or_else(|_| usage());
            }
            "--speedup" => {
                let speedup: f64 = value("--speedup").parse().unwrap_or_else(|_| usage());
                if !(speedup.is_finite() && speedup > 0.0) {
                    eprintln!("fairschedd: --speedup must be a positive number");
                    std::process::exit(2);
                }
                cfg.session.clock = ClockMode::Realtime { speedup };
            }
            "--manual" => cfg.session.clock = ClockMode::Manual,
            "--no-trace" => cfg.session.traced = false,
            "--id-floor" => {
                cfg.session.id_floor = value("--id-floor").parse().unwrap_or_else(|_| usage());
            }
            "--workers" => {
                cfg.workers = value("--workers").parse().unwrap_or_else(|_| usage());
                if cfg.workers == 0 {
                    eprintln!("fairschedd: --workers must be at least 1");
                    std::process::exit(2);
                }
            }
            "--queue-capacity" => {
                cfg.queue_capacity = value("--queue-capacity")
                    .parse()
                    .unwrap_or_else(|_| usage());
            }
            "--journal-dir" => {
                cfg.journal_dir = Some(std::path::PathBuf::from(value("--journal-dir")));
            }
            "--recover" => cfg.recover = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("fairschedd: unknown flag {other}");
                usage();
            }
        }
    }
    if cfg.recover && cfg.journal_dir.is_none() {
        eprintln!("fairschedd: --recover needs --journal-dir");
        std::process::exit(2);
    }

    let clock = cfg.session.clock;
    let mut daemon = match Daemon::start_with(&format!("127.0.0.1:{port}"), cfg) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("fairschedd: {e}");
            std::process::exit(1);
        }
    };
    let addr = daemon.addr();
    println!("fairschedd listening on {addr}");
    if let Some(path) = port_file {
        let written = std::fs::File::create(&path).and_then(|mut f| writeln!(f, "{}", addr.port()));
        if let Err(e) = written {
            eprintln!("fairschedd: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }

    // Realtime clocks need a heartbeat: events only play out when time is
    // granted, so tick every live session until shutdown. Sessions
    // created over the API after this point are picked up on the next
    // beat because the registry is re-read each cycle.
    let registry = std::sync::Arc::clone(daemon.registry());
    if let ClockMode::Realtime { .. } = clock {
        std::thread::spawn(move || loop {
            std::thread::sleep(std::time::Duration::from_millis(20));
            let mut any_live = false;
            for session in registry.sessions() {
                if session.tick().is_ok() {
                    any_live = true;
                }
            }
            if !any_live {
                // Every session sealed: nothing left to drive.
                break;
            }
        });
    }

    // Park until shutdown flips the stop flag and unblocks the accept
    // loop; joining the threads is exactly Daemon::shutdown's job.
    loop {
        std::thread::sleep(std::time::Duration::from_millis(50));
        if daemon.stopped() {
            break;
        }
    }
    daemon.shutdown();
    println!("fairschedd: stopped");
}
