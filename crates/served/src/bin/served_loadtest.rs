//! Load-tests `fairschedd` over real HTTP with concurrent submitters,
//! and measures what observing the daemon costs.
//!
//! ```text
//! served_loadtest [--submitters N] [--jobs N] [--sessions N]
//!                 [--policy ID] [--nodes N] [--epochs N] [--seed N]
//!                 [--scrape-ms N] [--port-file PATH] [--out BENCH_9.json]
//! ```
//!
//! Runs the same epoch-barriered replay **twice** against fresh daemons:
//! once bare (no scraper — the throughput baseline), then once with a
//! scraper thread polling `GET /metrics` every `--scrape-ms` for the
//! whole run, the way a Prometheus agent would. Both phases must
//! reproduce the batch schedule byte-for-byte; the report records
//! steps/sec for each phase and the scrape overhead as a percentage.
//!
//! With `--sessions N` the workload splits round-robin across N named
//! sessions hosted by the same daemon — every session runs its share
//! concurrently and must independently reproduce the batch simulation of
//! that share, which is the multi-tenant isolation property.
//!
//! Submit latency percentiles come from the daemon's own exposition —
//! the `/v1/jobs` route histogram scraped at the end of the scrape-on
//! phase — not from client-side stopwatches, so the numbers are the ones
//! a dashboard would show (session-scoped submits collapse onto the same
//! route label).
//!
//! Each phase replays the workload through `--submitters` concurrent
//! keep-alive HTTP clients under manual clocks with epoch barriers:
//! every submitter posts its share of an epoch's jobs, all threads meet
//! at a barrier, then the coordinator grants every session simulated
//! time up to just below the next epoch — so no submitter can ever race
//! a clock into a non-monotonic rejection, and the grant order keeps
//! each session byte-equivalent to the batch simulation of its share,
//! which this binary asserts.
//!
//! `--port-file` (scrape-on phase only) publishes the daemon's port so
//! an external probe — the CI smoke check — can curl `/metrics` mid-run.
//!
//! Exits nonzero on any lost submission, schedule divergence from batch,
//! empty trace stream, dropped trace lines, or unclean shutdown.

use fairsched_core::policy::PolicySpec;
use fairsched_obs::registry::{parse_exposition, quantile_from_buckets, Sample};
use fairsched_served::api::SessionSpec;
use fairsched_served::clock::ClockMode;
use fairsched_served::session::SessionConfig;
use fairsched_served::{Client, Daemon, SubmitRequest};
use fairsched_sim::{simulate, NullObserver, Schedule, SimOptions};
use fairsched_workload::job::Job;
use fairsched_workload::time::Time;
use fairsched_workload::CplantModel;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

struct Args {
    submitters: usize,
    jobs: usize,
    sessions: usize,
    policy: String,
    nodes: u32,
    epochs: usize,
    seed: u64,
    scrape_ms: u64,
    port_file: Option<String>,
    out: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        submitters: 100,
        jobs: 2000,
        sessions: 1,
        policy: "easy.nomax".into(),
        nodes: 1024,
        epochs: 8,
        seed: 8,
        scrape_ms: 25,
        port_file: None,
        out: "BENCH_9.json".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("served_loadtest: {arg} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--submitters" => parsed.submitters = value().parse().unwrap(),
            "--jobs" => parsed.jobs = value().parse().unwrap(),
            "--sessions" => parsed.sessions = value().parse().unwrap(),
            "--policy" => parsed.policy = value(),
            "--nodes" => parsed.nodes = value().parse().unwrap(),
            "--epochs" => parsed.epochs = value().parse().unwrap(),
            "--seed" => parsed.seed = value().parse().unwrap(),
            "--scrape-ms" => parsed.scrape_ms = value().parse().unwrap(),
            "--port-file" => parsed.port_file = Some(value()),
            "--out" => parsed.out = value(),
            other => {
                eprintln!("served_loadtest: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    assert!(parsed.submitters >= 1 && parsed.epochs >= 1 && parsed.jobs >= 1);
    assert!(
        parsed.sessions >= 1 && parsed.sessions <= parsed.submitters,
        "--sessions must be between 1 and --submitters"
    );
    assert!(parsed.scrape_ms >= 1, "--scrape-ms must be positive");
    parsed
}

/// One phase's outcome: how fast the daemon stepped, and (scrape-on
/// phase) the final exposition text the quantiles are read from.
struct PhaseOutcome {
    wall: Duration,
    steps: u64,
    scrapes: u64,
    trace_lines: usize,
    final_metrics: Option<String>,
}

impl PhaseOutcome {
    fn steps_per_sec(&self) -> f64 {
        self.steps as f64 / self.wall.as_secs_f64()
    }
}

/// The cumulative `(le, count)` pairs of one route's latency histogram,
/// ready for [`quantile_from_buckets`].
fn latency_buckets(samples: &[Sample], route: &str) -> Vec<(f64, u64)> {
    let mut buckets: Vec<(f64, u64)> = samples
        .iter()
        .filter(|s| s.name == "fairschedd_http_request_duration_ns_bucket")
        .filter(|s| s.label("route") == Some(route))
        .filter_map(|s| {
            let le = s.label("le")?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().ok()?
            };
            Some((bound, s.value as u64))
        })
        .collect();
    buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    buckets
}

/// Session `s`'s client: the default session for index 0, a named one
/// otherwise.
fn session_client(base: &Client, s: usize) -> Client {
    if s == 0 {
        base.clone()
    } else {
        base.for_session(&format!("load{s}"))
    }
}

fn run_phase(args: &Args, shares: &[Vec<Job>], batches: &[Schedule], scrape: bool) -> PhaseOutcome {
    let total_jobs: usize = shares.iter().map(Vec::len).sum();
    let mut daemon = Daemon::start(
        "127.0.0.1:0",
        SessionConfig {
            policy: args.policy.clone(),
            nodes: args.nodes,
            clock: ClockMode::Manual,
            traced: true,
            id_floor: 0,
            ..SessionConfig::default()
        },
    )
    .expect("daemon start");
    let addr = daemon.addr();
    let phase = if scrape { "scrape-on" } else { "baseline" };
    eprintln!(
        "served_loadtest[{phase}]: daemon on {addr}, {} jobs, {} submitters, {} sessions, {} epochs",
        total_jobs, args.submitters, args.sessions, args.epochs
    );
    if scrape {
        if let Some(path) = &args.port_file {
            std::fs::write(path, format!("{}\n", addr.port())).expect("write port file");
        }
    }

    let coordinator = Client::new(addr);
    for s in 1..args.sessions {
        coordinator
            .create_session(&SessionSpec::named(&format!("load{s}")))
            .expect("create session");
    }

    // Epoch boundaries over [0, max_submit] across ALL sessions: epoch k
    // owns submissions in [bounds[k], bounds[k+1]). After an epoch's
    // barrier the coordinator grants every session bounds[k+1] - 1 —
    // strictly below every later submission, so arrivals are always
    // inserted before their timestamp is reachable (the property that
    // makes each online session byte-equal to its batch reference).
    let max_submit = shares
        .iter()
        .filter_map(|jobs| jobs.last().map(|j| j.submit))
        .max()
        .unwrap_or(0);
    let epochs = args.epochs.min(total_jobs);
    let bounds: Vec<Time> = (0..=epochs)
        .map(|k| (max_submit + 2) * k as Time / epochs as Time)
        .collect();

    // A live trace subscriber on the default session, attached before
    // any submission.
    let trace_client = Client::new(addr);
    let trace_thread = std::thread::spawn(move || trace_client.trace_capture());

    // The scraper: a Prometheus-shaped poller hammering /metrics for the
    // whole run. Its last successful scrape is the quantile source.
    let scraping = Arc::new(AtomicBool::new(scrape));
    let scraper = scrape.then(|| {
        let scraping = Arc::clone(&scraping);
        let client = Client::new(addr);
        let interval = Duration::from_millis(args.scrape_ms);
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            let mut last = String::new();
            while scraping.load(Ordering::Relaxed) {
                match client.metrics_text() {
                    Ok(text) => {
                        scrapes += 1;
                        last = text;
                    }
                    Err(e) => panic!("mid-run scrape failed: {e}"),
                }
                std::thread::sleep(interval);
            }
            (scrapes, last)
        })
    });

    // Submitter i serves session i % sessions; within a session's
    // submitter group the share splits round-robin by rank.
    let submitters_for = |s: usize| {
        (args.submitters + args.sessions - 1 - s) / args.sessions // count of i in 0..submitters with i % sessions == s
    };
    let worker_shares: Vec<(usize, Vec<SubmitRequest>)> = (0..args.submitters)
        .map(|i| {
            let s = i % args.sessions;
            let rank = i / args.sessions;
            let share = shares[s]
                .iter()
                .skip(rank)
                .step_by(submitters_for(s).max(1))
                .map(SubmitRequest::from_job)
                .collect();
            (s, share)
        })
        .collect();

    let barrier = Arc::new(Barrier::new(args.submitters + 1));
    let bounds = Arc::new(bounds);
    let started = Instant::now();
    let workers: Vec<_> = worker_shares
        .into_iter()
        .map(|(s, share)| {
            let barrier = Arc::clone(&barrier);
            let bounds = Arc::clone(&bounds);
            let client = session_client(&coordinator, s);
            std::thread::spawn(move || {
                let mut accepted = 0usize;
                for window in bounds.windows(2) {
                    for req in share
                        .iter()
                        .filter(|r| r.submit >= window[0] && r.submit < window[1])
                    {
                        client.submit(req).unwrap_or_else(|e| {
                            panic!("lost submission {}: {e}", req.id);
                        });
                        accepted += 1;
                    }
                    // Everyone done with this epoch's submissions…
                    barrier.wait();
                    // …coordinator grants time…
                    barrier.wait();
                    // …next epoch.
                }
                accepted
            })
        })
        .collect();

    let session_clients: Vec<Client> = (0..args.sessions)
        .map(|s| session_client(&coordinator, s))
        .collect();
    for window in bounds.windows(2) {
        barrier.wait();
        for client in &session_clients {
            client
                .advance(window[1].saturating_sub(1))
                .expect("advance");
        }
        barrier.wait();
    }

    let mut accepted_total = 0usize;
    for worker in workers {
        accepted_total += worker.join().expect("submitter panicked");
    }
    assert_eq!(
        accepted_total, total_jobs,
        "lost submissions: {accepted_total} accepted of {total_jobs}"
    );

    // Per-session: accepted counts, seal, and byte-equivalence with the
    // batch reference for that session's share.
    let mut steps = 0u64;
    for (s, client) in session_clients.iter().enumerate() {
        let status = client.status().expect("status");
        assert_eq!(
            status.accepted,
            shares[s].len() as u64,
            "session {s} lost a submission"
        );
        let seal = client.seal().expect("seal");
        assert_eq!(seal.records, batches[s].records.len() as u64);
        let name = if s == 0 {
            "default".to_string()
        } else {
            format!("load{s}")
        };
        let session = daemon.registry().get(&name).expect("session exists");
        steps += session.steps();
        let online = session
            .schedule()
            .expect("sealed session retains its schedule");
        assert_eq!(
            &online, &batches[s],
            "session {s}: online schedule diverged from the batch reference"
        );
    }
    let wall = started.elapsed();

    // Stop the scraper *after* seal so its final scrape sees the full
    // request history, then take one authoritative post-seal scrape.
    let (scrapes, final_metrics) = match scraper {
        Some(handle) => {
            scraping.store(false, Ordering::Relaxed);
            let (scrapes, _) = handle.join().expect("scraper panicked");
            let text = coordinator.metrics_text().expect("final scrape");
            (scrapes, Some(text))
        }
        None => (0, None),
    };

    coordinator.shutdown().expect("shutdown");
    daemon.shutdown();

    let (trace_lines, trace_dropped) = trace_thread
        .join()
        .expect("trace thread")
        .expect("trace stream");
    assert!(
        !trace_lines.is_empty(),
        "trace stream was empty across the whole run"
    );
    assert!(
        trace_lines.iter().any(|l| l.contains("job_started")),
        "trace stream carried no start records"
    );
    assert_eq!(
        trace_dropped, 0,
        "daemon dropped trace lines on a healthy reader"
    );

    PhaseOutcome {
        wall,
        steps,
        scrapes,
        trace_lines: trace_lines.len(),
        final_metrics,
    }
}

fn main() {
    let args = parse_args();

    // The synthetic workload, truncated to --jobs and split round-robin
    // across sessions.
    let mut jobs: Vec<Job> = CplantModel::new(args.seed)
        .with_nodes(args.nodes)
        .generate();
    jobs.truncate(args.jobs);
    jobs.sort_by_key(|j| (j.submit, j.id));
    assert!(!jobs.is_empty(), "workload generation produced no jobs");

    let spec = PolicySpec::parse(&args.policy).unwrap_or_else(|e| {
        eprintln!("served_loadtest: {e}");
        std::process::exit(2);
    });

    // Per-session shares and the batch references each session must
    // reproduce byte-for-byte.
    let shares: Vec<Vec<Job>> = (0..args.sessions)
        .map(|s| {
            jobs.iter()
                .enumerate()
                .filter(|(i, _)| i % args.sessions == s)
                .map(|(_, j)| j.clone())
                .collect()
        })
        .collect();
    let batches: Vec<Schedule> = shares
        .iter()
        .map(|share| {
            let mut batch_jobs = share.clone();
            batch_jobs.sort_by_key(|j| j.id);
            simulate(
                &batch_jobs,
                &spec.sim_config(args.nodes),
                &mut NullObserver,
                SimOptions::new(),
            )
            .expect("batch reference simulation")
        })
        .collect();

    let baseline = run_phase(&args, &shares, &batches, false);
    let scraped = run_phase(&args, &shares, &batches, true);
    assert!(scraped.scrapes > 0, "scrape phase never scraped");

    let exposition = scraped
        .final_metrics
        .as_deref()
        .expect("scrape phase kept its final exposition");
    let samples = parse_exposition(exposition).expect("daemon exposition must parse");
    let submit_buckets = latency_buckets(&samples, "/v1/jobs");
    assert!(
        submit_buckets.iter().any(|&(_, n)| n > 0),
        "/v1/jobs latency histogram is empty after {} submissions",
        jobs.len()
    );
    let q = |p: f64| quantile_from_buckets(&submit_buckets, p) / 1e3;
    let scrape_buckets = latency_buckets(&samples, "/metrics");
    let scrape_p50_us = quantile_from_buckets(&scrape_buckets, 0.50) / 1e3;

    let overhead_percent = (1.0 - scraped.steps_per_sec() / baseline.steps_per_sec()) * 100.0;
    let report = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"served_loadtest\",\n",
            "  \"policy\": \"{}\",\n",
            "  \"nodes\": {},\n",
            "  \"jobs\": {},\n",
            "  \"submitters\": {},\n",
            "  \"sessions\": {},\n",
            "  \"epochs\": {},\n",
            "  \"steps\": {},\n",
            "  \"baseline\": {{\n",
            "    \"wall_ms\": {:.3},\n",
            "    \"steps_per_sec\": {:.1}\n",
            "  }},\n",
            "  \"scrape_on\": {{\n",
            "    \"wall_ms\": {:.3},\n",
            "    \"steps_per_sec\": {:.1},\n",
            "    \"scrape_interval_ms\": {},\n",
            "    \"scrapes\": {},\n",
            "    \"scrape_p50_us\": {:.1}\n",
            "  }},\n",
            "  \"scrape_overhead_percent\": {:.2},\n",
            "  \"submit_latency_us\": {{\n",
            "    \"source\": \"/metrics histogram, route /v1/jobs\",\n",
            "    \"p50\": {:.1},\n",
            "    \"p95\": {:.1},\n",
            "    \"p99\": {:.1}\n",
            "  }},\n",
            "  \"trace_lines\": {},\n",
            "  \"schedule_matches_batch\": true\n",
            "}}\n"
        ),
        args.policy,
        args.nodes,
        jobs.len(),
        args.submitters,
        args.sessions,
        args.epochs.min(jobs.len()),
        scraped.steps,
        baseline.wall.as_secs_f64() * 1e3,
        baseline.steps_per_sec(),
        scraped.wall.as_secs_f64() * 1e3,
        scraped.steps_per_sec(),
        args.scrape_ms,
        scraped.scrapes,
        scrape_p50_us,
        overhead_percent,
        q(0.50),
        q(0.95),
        q(0.99),
        scraped.trace_lines,
    );
    std::fs::File::create(&args.out)
        .and_then(|mut f| f.write_all(report.as_bytes()))
        .unwrap_or_else(|e| {
            eprintln!("served_loadtest: cannot write {}: {e}", args.out);
            std::process::exit(1);
        });
    eprintln!("served_loadtest: ok — {report}");
}
