//! Load-tests `fairschedd` over real HTTP with concurrent submitters.
//!
//! ```text
//! served_loadtest [--submitters N] [--jobs N] [--policy ID] [--nodes N]
//!                 [--epochs N] [--seed N] [--out BENCH_8.json]
//! ```
//!
//! Starts an in-process daemon on a free port (the same accept loop and
//! route table the standalone binary runs), generates a synthetic
//! CplantModel workload, and replays it through `--submitters`
//! concurrent HTTP clients under a manual clock with epoch barriers:
//! every submitter posts its share of an epoch's jobs, all threads meet
//! at a barrier, then the coordinator grants simulated time up to just
//! below the next epoch — so no submitter can ever race the clock into a
//! non-monotonic rejection, and the grant order keeps the session
//! byte-equivalent to the batch simulation, which this binary asserts.
//!
//! Exits nonzero on any lost submission, schedule divergence from batch,
//! empty trace stream, or unclean shutdown. Writes submit-latency
//! percentiles and steps/sec to `--out` as JSON.

use fairsched_core::policy::PolicySpec;
use fairsched_served::clock::ClockMode;
use fairsched_served::session::SessionConfig;
use fairsched_served::{Client, Daemon, SubmitRequest};
use fairsched_sim::{simulate, NullObserver, SimOptions};
use fairsched_workload::job::Job;
use fairsched_workload::time::Time;
use fairsched_workload::CplantModel;
use std::io::Write;
use std::sync::{Arc, Barrier};
use std::time::Instant;

struct Args {
    submitters: usize,
    jobs: usize,
    policy: String,
    nodes: u32,
    epochs: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        submitters: 100,
        jobs: 2000,
        policy: "easy.nomax".into(),
        nodes: 1024,
        epochs: 8,
        seed: 8,
        out: "BENCH_8.json".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("served_loadtest: {arg} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--submitters" => parsed.submitters = value().parse().unwrap(),
            "--jobs" => parsed.jobs = value().parse().unwrap(),
            "--policy" => parsed.policy = value(),
            "--nodes" => parsed.nodes = value().parse().unwrap(),
            "--epochs" => parsed.epochs = value().parse().unwrap(),
            "--seed" => parsed.seed = value().parse().unwrap(),
            "--out" => parsed.out = value(),
            other => {
                eprintln!("served_loadtest: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    assert!(parsed.submitters >= 1 && parsed.epochs >= 1 && parsed.jobs >= 1);
    parsed
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank]
}

fn main() {
    let args = parse_args();

    // The synthetic workload, truncated to --jobs and re-timed so the
    // epoch windows stay densely populated.
    let mut jobs: Vec<Job> = CplantModel::new(args.seed)
        .with_nodes(args.nodes)
        .generate();
    jobs.truncate(args.jobs);
    jobs.sort_by_key(|j| (j.submit, j.id));
    assert!(!jobs.is_empty(), "workload generation produced no jobs");
    let max_submit = jobs.last().map(|j| j.submit).unwrap_or(0);

    // The batch reference the online run must reproduce byte-for-byte.
    let spec = PolicySpec::parse(&args.policy).unwrap_or_else(|e| {
        eprintln!("served_loadtest: {e}");
        std::process::exit(2);
    });
    let mut batch_jobs = jobs.clone();
    batch_jobs.sort_by_key(|j| j.id);
    let batch = simulate(
        &batch_jobs,
        &spec.sim_config(args.nodes),
        &mut NullObserver,
        SimOptions::new(),
    )
    .expect("batch reference simulation");

    let mut daemon = Daemon::start(
        "127.0.0.1:0",
        SessionConfig {
            policy: args.policy.clone(),
            nodes: args.nodes,
            clock: ClockMode::Manual,
            traced: true,
            id_floor: 0,
        },
    )
    .expect("daemon start");
    let addr = daemon.addr();
    eprintln!(
        "served_loadtest: daemon on {addr}, {} jobs, {} submitters, {} epochs",
        jobs.len(),
        args.submitters,
        args.epochs
    );

    // Epoch boundaries over [0, max_submit]: epoch k owns submissions in
    // [bounds[k], bounds[k+1]). After an epoch's barrier the coordinator
    // grants bounds[k+1] - 1 — strictly below every later submission, so
    // arrivals are always inserted before their timestamp is reachable
    // (the property that makes the online run byte-equal to batch).
    let epochs = args.epochs.min(jobs.len());
    let bounds: Vec<Time> = (0..=epochs)
        .map(|k| (max_submit + 2) * k as Time / epochs as Time)
        .collect();

    // A live trace subscriber, attached before any submission.
    let trace_client = Client::new(addr);
    let trace_thread = std::thread::spawn(move || trace_client.trace_lines());

    // Partition jobs round-robin across submitters.
    let shares: Vec<Vec<SubmitRequest>> = (0..args.submitters)
        .map(|i| {
            jobs.iter()
                .skip(i)
                .step_by(args.submitters)
                .map(SubmitRequest::from_job)
                .collect()
        })
        .collect();

    let barrier = Arc::new(Barrier::new(args.submitters + 1));
    let bounds = Arc::new(bounds);
    let started = Instant::now();
    let workers: Vec<_> = shares
        .into_iter()
        .map(|share| {
            let barrier = Arc::clone(&barrier);
            let bounds = Arc::clone(&bounds);
            let client = Client::new(addr);
            std::thread::spawn(move || {
                let mut latencies_ns: Vec<u64> = Vec::with_capacity(share.len());
                let mut accepted = 0usize;
                for window in bounds.windows(2) {
                    for req in share
                        .iter()
                        .filter(|r| r.submit >= window[0] && r.submit < window[1])
                    {
                        let t0 = Instant::now();
                        client.submit(req).unwrap_or_else(|e| {
                            panic!("lost submission {}: {e}", req.id);
                        });
                        latencies_ns.push(t0.elapsed().as_nanos() as u64);
                        accepted += 1;
                    }
                    // Everyone done with this epoch's submissions…
                    barrier.wait();
                    // …coordinator grants time…
                    barrier.wait();
                    // …next epoch.
                }
                (latencies_ns, accepted)
            })
        })
        .collect();

    let coordinator = Client::new(addr);
    for window in bounds.windows(2) {
        barrier.wait();
        coordinator
            .advance(window[1].saturating_sub(1))
            .expect("advance");
        barrier.wait();
    }

    let mut latencies_ns: Vec<u64> = Vec::with_capacity(jobs.len());
    let mut accepted_total = 0usize;
    for worker in workers {
        let (lat, accepted) = worker.join().expect("submitter panicked");
        latencies_ns.extend(lat);
        accepted_total += accepted;
    }
    assert_eq!(
        accepted_total,
        jobs.len(),
        "lost submissions: {} accepted of {}",
        accepted_total,
        jobs.len()
    );

    let status = coordinator.status().expect("status");
    assert_eq!(
        status.accepted,
        jobs.len() as u64,
        "daemon lost a submission"
    );

    let seal = coordinator.seal().expect("seal");
    let wall = started.elapsed();
    let steps = daemon.session().steps();

    // Byte-equivalence with the batch reference.
    let online = daemon
        .session()
        .schedule()
        .expect("sealed session retains its schedule");
    assert_eq!(
        online, batch,
        "online schedule diverged from the batch reference"
    );
    assert_eq!(seal.records, batch.records.len() as u64);

    coordinator.shutdown().expect("shutdown");
    daemon.shutdown();

    let trace_lines = trace_thread
        .join()
        .expect("trace thread")
        .expect("trace stream");
    assert!(
        !trace_lines.is_empty(),
        "trace stream was empty across the whole run"
    );
    assert!(
        trace_lines.iter().any(|l| l.contains("job_started")),
        "trace stream carried no start records"
    );

    latencies_ns.sort_unstable();
    let steps_per_sec = steps as f64 / wall.as_secs_f64();
    let report = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"served_loadtest\",\n",
            "  \"policy\": \"{}\",\n",
            "  \"nodes\": {},\n",
            "  \"jobs\": {},\n",
            "  \"submitters\": {},\n",
            "  \"epochs\": {},\n",
            "  \"wall_ms\": {:.3},\n",
            "  \"steps\": {},\n",
            "  \"steps_per_sec\": {:.1},\n",
            "  \"submit_latency_us\": {{\n",
            "    \"p50\": {:.1},\n",
            "    \"p95\": {:.1},\n",
            "    \"p99\": {:.1},\n",
            "    \"max\": {:.1}\n",
            "  }},\n",
            "  \"trace_lines\": {},\n",
            "  \"schedule_matches_batch\": true\n",
            "}}\n"
        ),
        args.policy,
        args.nodes,
        jobs.len(),
        args.submitters,
        epochs,
        wall.as_secs_f64() * 1e3,
        steps,
        steps_per_sec,
        percentile(&latencies_ns, 0.50) as f64 / 1e3,
        percentile(&latencies_ns, 0.95) as f64 / 1e3,
        percentile(&latencies_ns, 0.99) as f64 / 1e3,
        latencies_ns.last().copied().unwrap_or(0) as f64 / 1e3,
        trace_lines.len(),
    );
    std::fs::File::create(&args.out)
        .and_then(|mut f| f.write_all(report.as_bytes()))
        .unwrap_or_else(|e| {
            eprintln!("served_loadtest: cannot write {}: {e}", args.out);
            std::process::exit(1);
        });
    eprintln!("served_loadtest: ok — {report}");
}
