//! A minimal HTTP/1.1 layer over `std::net` streams.
//!
//! The workspace has no async runtime (vendored-stub policy: no registry
//! access), so `fairschedd` serves blocking HTTP/1.1 from a fixed worker
//! pool. This module owns the wire mechanics: parsing a request line plus
//! headers plus a `Content-Length` body, and writing fixed (keep-alive by
//! default) or close-delimited streaming responses. The daemon layers
//! routing on top; the client layers request/response typing on top of
//! the same primitives.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Longest request body the daemon will buffer (1 MiB — submissions are
/// a few hundred bytes; this is purely an abuse guard).
const MAX_BODY: usize = 1 << 20;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// The path, e.g. `/v1/jobs` (query strings are kept verbatim).
    pub path: String,
    /// The body, when `Content-Length` was present.
    pub body: String,
    /// Whether the client asked for the connection to close after this
    /// exchange (`Connection: close`). HTTP/1.1 default is keep-alive.
    pub close: bool,
}

/// Reads one request from a buffered stream. Returns `Ok(None)` on a
/// clean EOF before any bytes (client closed a keep-alive connection).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "malformed request line",
            ))
        }
    };
    let mut content_length = 0usize;
    let mut close = false;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof in headers",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                })?;
            } else if name.eq_ignore_ascii_case("connection")
                && value.trim().eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "body too large",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-utf8 body"))?;
    Ok(Some(Request {
        method,
        path,
        body,
        close,
    }))
}

/// Writes a complete response with a JSON (or plain-text) body. The
/// connection stays open for the next request unless `close` is set —
/// keep-alive is what lets a thousand submitters share a fixed worker
/// pool without a handshake per request.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    let reason = reason_phrase(status);
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Starts a streaming response: headers only, no `Content-Length` — the
/// caller writes lines until it drops the stream (HTTP/1.0-style
/// close-delimited body, which every line-oriented consumer accepts).
pub fn write_stream_header(stream: &mut TcpStream, content_type: &str) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parses_a_request_with_a_body_and_writes_a_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            write!(
                stream,
                "POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\n{{\"id\": 1}}"
            )
            .unwrap();
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            response
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let req = read_request(&mut reader).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.body, "{\"id\": 1}");
        assert!(!req.close, "HTTP/1.1 without Connection: close keeps alive");
        let mut stream = stream;
        write_response(&mut stream, 200, "application/json", "{\"ok\":true}", true).unwrap();
        // Both fds (the stream and the reader's clone) must close for the
        // client to see EOF.
        drop(stream);
        drop(reader);
        let response = client.join().unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(response.ends_with("{\"ok\":true}"));
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_stream() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            for i in 0..3 {
                let close = if i == 2 { "Connection: close\r\n" } else { "" };
                write!(stream, "GET /v1/status HTTP/1.1\r\nHost: x\r\n{close}\r\n").unwrap();
            }
            let mut response = String::new();
            stream.read_to_string(&mut response).unwrap();
            response.matches("HTTP/1.1 200 OK").count()
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut stream = stream;
        let mut served = 0;
        while let Ok(Some(req)) = read_request(&mut reader) {
            write_response(&mut stream, 200, "application/json", "{}", req.close).unwrap();
            served += 1;
            if req.close {
                break;
            }
        }
        drop((stream, reader));
        assert_eq!(served, 3);
        assert_eq!(client.join().unwrap(), 3);
    }

    #[test]
    fn clean_eof_reads_as_none() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let _ = TcpStream::connect(addr).unwrap();
            // Drop immediately: clean close, no request.
        });
        let (stream, _) = listener.accept().unwrap();
        client.join().unwrap();
        let mut reader = BufReader::new(stream);
        assert!(read_request(&mut reader).unwrap().is_none());
    }
}
