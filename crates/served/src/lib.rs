//! `fairsched-served`: the online scheduling service built on the
//! deterministic stepped sim core.
//!
//! The batch simulator answers "what would this policy have done with
//! this recorded month of jobs?". This crate answers the online form of
//! the same question: jobs arrive *now*, over HTTP, and the daemon
//! (`fairschedd`) schedules them with the same deterministic core —
//! [`SteppedSim`](fairsched_sim::SteppedSim) — that the batch path uses,
//! advancing simulated time with a virtual clock (wall-time-scaled or
//! manually granted).
//!
//! Because the core's event queue is insertion-order independent and the
//! service rejects submissions dated before time already granted
//! ([`ServeError::NonMonotonicSubmit`]), an online session replaying a
//! recorded trace produces a schedule *byte-identical* to the batch
//! simulation of the same trace — the property
//! `tests/replay_equivalence.rs` pins across every warm-start-forkable
//! engine.
//!
//! Layering, bottom up:
//!
//! * [`json`] — hand-rolled JSON (the vendored `serde` is a no-op stub).
//! * [`api`] — typed requests, responses, and [`ServeError`].
//! * [`clock`] — [`VirtualClock`]: manual grants or scaled wall time.
//! * [`journal`] — [`SessionJournal`]: the checksummed durability log
//!   every accepted submission and clock grant appends to, and the replay
//!   path `fairschedd --recover` rebuilds sessions from.
//! * [`session`] — [`Session`]: the stepped core behind a mutex, with
//!   submission validation, batched submits, trace fan-out, live explain,
//!   live profile.
//! * [`registry`] — [`SessionRegistry`]: many named sessions behind one
//!   daemon, each with its own policy, machine, and journal.
//! * [`http`] — minimal blocking HTTP/1.1 with keep-alive (no async
//!   runtime available).
//! * [`metrics`] — [`ServiceMetrics`]: the daemon's `/metrics` surface.
//! * [`daemon`] — [`Daemon`]: the accept queue, worker pool, and route
//!   table.
//! * [`client`] — [`Client`]: the blocking typed client (one reused
//!   connection per clone).

#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod clock;
pub mod daemon;
pub mod http;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod session;

pub use api::{
    AdvanceResponse, SealResponse, ServeError, SessionSpec, StatusResponse, SubmitRequest,
    SubmitResponse,
};
pub use client::Client;
pub use clock::{ClockMode, VirtualClock};
pub use daemon::Daemon;
pub use journal::SessionJournal;
pub use metrics::ServiceMetrics;
pub use registry::SessionRegistry;
pub use session::{Session, SessionConfig, TraceSubscription};
