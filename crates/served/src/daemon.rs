//! `fairschedd`'s serving loop: a TCP listener, one thread per
//! connection, and the route table mapping HTTP requests onto
//! [`Session`] calls.
//!
//! Routes (all under `/v1`):
//!
//! | Method | Path              | Meaning                                    |
//! |--------|-------------------|--------------------------------------------|
//! | POST   | `/v1/jobs`        | Submit a job                               |
//! | GET    | `/v1/status`      | Live session status                        |
//! | POST   | `/v1/advance`     | Grant simulated time (manual clocks)       |
//! | POST   | `/v1/tick`        | Advance to the clock target (realtime)     |
//! | GET    | `/v1/trace`       | Stream trace records as JSONL until sealed |
//! | GET    | `/v1/explain/{id}`| Live wait decomposition for one job        |
//! | GET    | `/v1/profile`     | Where scheduling time has gone so far      |
//! | POST   | `/v1/seal`        | Play out remaining events, final summary   |
//! | POST   | `/v1/shutdown`    | Seal (if needed) and stop the listener     |
//! | GET    | `/v1/fairness`    | Live fairness snapshot (JSON)              |
//! | GET    | `/metrics`        | Prometheus text exposition                 |
//!
//! Every request is counted and timed per route
//! ([`crate::metrics::ServiceMetrics`]); `/metrics` renders the whole
//! registry with the session gauges refreshed at scrape time.
//!
//! The daemon is deterministic where it matters: all scheduling state
//! sits behind the session mutex, so any interleaving of concurrent
//! requests linearizes into some valid grant/submit order — and the
//! monotonic-submission rule guarantees every such order yields the
//! same schedule as the equivalent batch run.

use crate::api::ServeError;
use crate::http::{read_request, write_response, write_stream_header, Request};
use crate::json::{parse, Json};
use crate::metrics::route_label;
use crate::session::{Session, SessionConfig};
use crate::{api, SubmitRequest};
use fairsched_workload::job::JobId;
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A running daemon: the session plus the accept loop's lifecycle.
pub struct Daemon {
    session: Arc<Session>,
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Binds `addr` (use port 0 for an OS-assigned free port) and starts
    /// accepting connections on a background thread.
    pub fn start(addr: &str, cfg: SessionConfig) -> Result<Daemon, ServeError> {
        let session = Arc::new(Session::new(cfg)?);
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_session = Arc::clone(&session);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("fairschedd-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let session = Arc::clone(&accept_session);
                    let stop = Arc::clone(&accept_stop);
                    // Connection handlers are detached: they own nothing
                    // but an Arc, and sealing closes their subscriptions.
                    let _ = std::thread::Builder::new()
                        .name("fairschedd-conn".into())
                        .spawn(move || handle_connection(stream, &session, &stop));
                }
            })
            .map_err(ServeError::from)?;
        Ok(Daemon {
            session,
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The shared session, for in-process use (tests, `quickserve`).
    pub fn session(&self) -> &Arc<Session> {
        &self.session
    }

    /// Whether a shutdown request (or [`Daemon::shutdown`]) has flagged
    /// the accept loop down.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stops accepting connections and joins the accept loop. Does not
    /// seal the session; callers decide whether to finish the schedule.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(stream: TcpStream, session: &Session, stop: &AtomicBool) {
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let mut stream = stream;
    let req = match read_request(&mut reader) {
        Ok(Some(req)) => req,
        Ok(None) => return,
        Err(e) => {
            let err = ServeError::BadRequest {
                detail: e.to_string(),
            };
            let _ = write_response(
                &mut stream,
                err.status(),
                "application/json",
                &err.to_json().render(),
            );
            return;
        }
    };
    let started = Instant::now();
    let label = route_label(&req.path);
    if req.method == "GET" && req.path == "/v1/trace" {
        // The stream lives as long as the session; time only the setup.
        session
            .metrics()
            .observe_request(label, 200, elapsed_ns(started));
        stream_trace(stream, session);
        return;
    }
    let (status, content_type, body) = if req.method == "GET" && req.path == "/metrics" {
        (
            200,
            "text/plain; version=0.0.4",
            session.metrics().render(session),
        )
    } else {
        match route(&req, session, stop) {
            Ok(body) => (200, "application/json", body.render()),
            Err(e) => (e.status(), "application/json", e.to_json().render()),
        }
    };
    let _ = write_response(&mut stream, status, content_type, &body);
    session
        .metrics()
        .observe_request(label, status, elapsed_ns(started));
}

fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

fn route(req: &Request, session: &Session, stop: &AtomicBool) -> Result<Json, ServeError> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/jobs") => {
            let submit = SubmitRequest::from_json(&parse(&req.body)?)?;
            session.submit(&submit).map(|r| r.to_json())
        }
        ("GET", "/v1/status") => Ok(session.status().to_json()),
        ("POST", "/v1/advance") => {
            let to = parse(&req.body)?
                .get("to")
                .and_then(Json::as_u64)
                .ok_or_else(|| ServeError::BadRequest {
                    detail: "missing field `to`".into(),
                })?;
            session.advance_to(to).map(|r| r.to_json())
        }
        ("POST", "/v1/tick") => session.tick().map(|r| r.to_json()),
        ("GET", path) if path.starts_with("/v1/explain/") => {
            let id = path["/v1/explain/".len()..].parse::<u32>().map_err(|_| {
                ServeError::BadRequest {
                    detail: "explain id must be an integer".into(),
                }
            })?;
            let breakdown = session.explain(JobId(id))?;
            Ok(match breakdown {
                None => Json::obj([("found", Json::Bool(false))]),
                Some(b) => Json::obj([
                    ("found", Json::Bool(true)),
                    ("job", Json::UInt(b.job.0.into())),
                    ("submit", Json::UInt(b.submit)),
                    ("start", Json::UInt(b.start)),
                    ("capacity_wait", Json::UInt(b.capacity_wait)),
                    ("reservation_wait", Json::UInt(b.reservation_wait)),
                ]),
            })
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            let id =
                path["/v1/jobs/".len()..]
                    .parse::<u32>()
                    .map_err(|_| ServeError::BadRequest {
                        detail: "job id must be an integer".into(),
                    })?;
            Ok(match session.record_of(JobId(id)) {
                None => Json::obj([("found", Json::Bool(false))]),
                Some(r) => {
                    let mut obj = api::record_to_json(&r);
                    if let Json::Obj(map) = &mut obj {
                        map.insert("found".into(), Json::Bool(true));
                    }
                    obj
                }
            })
        }
        ("GET", "/v1/fairness") => {
            let (snap, users) = session.fairness();
            Ok(api::fairness_to_json(&snap, &users))
        }
        ("GET", "/v1/profile") => {
            let report = session.profile();
            Ok(Json::obj([
                ("wall_ns", Json::UInt(report.wall_ns)),
                ("sched_passes", Json::UInt(report.counters.sched_passes)),
                (
                    "backfill_attempts",
                    Json::UInt(report.counters.backfill_attempts),
                ),
                (
                    "backfill_successes",
                    Json::UInt(report.counters.backfill_successes),
                ),
                ("steps", Json::UInt(session.steps())),
                ("text", Json::Str(report.to_string())),
            ]))
        }
        ("POST", "/v1/seal") => session.seal().map(|r| r.to_json()),
        ("POST", "/v1/shutdown") => {
            // Seal if still live so trace subscribers see the close; then
            // flag the accept loop down. The response goes out first
            // because the connection already exists.
            let sealed = match session.seal() {
                Ok(_) => true,
                Err(ServeError::Sealed) => false,
                Err(e) => return Err(e),
            };
            stop.store(true, Ordering::SeqCst);
            Ok(Json::obj([
                ("stopping", Json::Bool(true)),
                ("sealed_now", Json::Bool(sealed)),
            ]))
        }
        (_, path) if path.starts_with("/v1/") => Err(ServeError::BadRequest {
            detail: format!("no route for {} {}", req.method, path),
        }),
        _ => Err(ServeError::BadRequest {
            detail: "unknown path; the API lives under /v1/".into(),
        }),
    }
}

/// Streams trace records as JSONL until the session seals (subscribers
/// get a `None` terminator), the session drops this reader for falling
/// behind, or the client goes away. The final line reports how many
/// lines the session had to drop on this subscriber — 0 for a reader
/// that kept up, nonzero when the stream is incomplete.
fn stream_trace(mut stream: TcpStream, session: &Session) {
    let sub = session.subscribe();
    if write_stream_header(&mut stream, "application/jsonl").is_err() {
        return;
    }
    let severed = loop {
        match sub.recv() {
            Ok(Some(line)) => {
                if stream
                    .write_all(line.as_bytes())
                    .and_then(|()| stream.write_all(b"\n"))
                    .is_err()
                {
                    return;
                }
            }
            Ok(None) => break false,
            Err(_) => break true,
        }
    };
    let close = Json::obj([
        ("trace_end", Json::Bool(true)),
        ("severed", Json::Bool(severed)),
        ("dropped", Json::UInt(sub.dropped())),
    ])
    .render();
    let _ = stream
        .write_all(close.as_bytes())
        .and_then(|()| stream.write_all(b"\n"));
    let _ = stream.flush();
}
