//! `fairschedd`'s serving loop: a TCP listener feeding a bounded accept
//! queue, a fixed worker pool serving keep-alive connections, and the
//! route table mapping HTTP requests onto [`Session`] calls through the
//! [`SessionRegistry`].
//!
//! Routes (all under `/v1`; every session route also exists under
//! `/v1/sessions/{name}/...`, the unprefixed form aliases the default
//! session):
//!
//! | Method | Path                  | Meaning                                    |
//! |--------|-----------------------|--------------------------------------------|
//! | POST   | `/v1/jobs`            | Submit a job (batched under contention)    |
//! | GET    | `/v1/status`          | Live session status                        |
//! | POST   | `/v1/advance`         | Grant simulated time (manual clocks)       |
//! | POST   | `/v1/tick`            | Advance to the clock target (realtime)     |
//! | GET    | `/v1/trace`           | Stream trace records as JSONL until sealed |
//! | GET    | `/v1/explain/{id}`    | Live wait decomposition for one job        |
//! | GET    | `/v1/profile`         | Where scheduling time has gone so far      |
//! | POST   | `/v1/seal`            | Play out remaining events, final summary   |
//! | POST   | `/v1/shutdown`        | Seal every session and stop the listener   |
//! | GET    | `/v1/fairness`        | Live fairness snapshot (JSON)              |
//! | GET    | `/v1/sessions`        | List sessions with status                  |
//! | POST   | `/v1/sessions`        | Create a named session                     |
//! | GET    | `/v1/sessions/{name}` | One session's status                       |
//! | DELETE | `/v1/sessions/{name}` | Delete a session (and its journal)         |
//! | GET    | `/metrics`            | Prometheus text exposition                 |
//!
//! ## Threading model
//!
//! The accept thread only enqueues connections; [`DaemonConfig::workers`]
//! pool threads do all serving. A worker popping a connection first
//! checks readiness without blocking (buffered bytes, else a
//! non-blocking `peek`): idle keep-alive connections are requeued rather
//! than parked on, so a thousand mostly-quiet submitters cannot pin the
//! pool. When the accept queue is full the daemon answers `503` and
//! closes — backpressure is explicit, never an unbounded thread spawn.
//! Trace streams live as long as the session, so they are handed to
//! detached threads instead of occupying a pool worker.
//!
//! The daemon is deterministic where it matters: all scheduling state
//! sits behind each session's mutex, so any interleaving of concurrent
//! requests linearizes into some valid grant/submit order — and the
//! monotonic-submission rule guarantees every such order yields the
//! same schedule as the equivalent batch run.

use crate::api::{ServeError, SessionSpec};
use crate::http::{read_request, write_response, write_stream_header, Request};
use crate::json::{parse, Json};
use crate::metrics::{route_label, ServiceMetrics};
use crate::registry::SessionRegistry;
use crate::session::{Session, SessionConfig};
use crate::{api, SubmitRequest};
use fairsched_workload::job::JobId;
use std::collections::VecDeque;
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the daemon runs: the default session's configuration plus the
/// serving and durability knobs.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Configuration for the default session, and the template sessions
    /// created over the API inherit from.
    pub session: SessionConfig,
    /// Pool threads serving requests.
    pub workers: usize,
    /// Accepted connections waiting for a worker before the daemon
    /// answers `503`.
    pub queue_capacity: usize,
    /// Where per-session durability journals live; `None` disables
    /// journaling.
    pub journal_dir: Option<PathBuf>,
    /// Rebuild sessions from the journals in `journal_dir` instead of
    /// starting fresh.
    pub recover: bool,
}

impl DaemonConfig {
    /// Serving defaults around a session configuration: 8 workers, a
    /// 1024-connection queue, no journaling.
    pub fn new(session: SessionConfig) -> DaemonConfig {
        DaemonConfig {
            session,
            workers: 8,
            queue_capacity: 1024,
            journal_dir: None,
            recover: false,
        }
    }
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig::new(SessionConfig::default())
    }
}

/// One accepted connection: the write half plus its buffered reader
/// (same socket, two fds).
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// The bounded hand-off between the accept thread and the worker pool.
struct ConnQueue {
    queue: Mutex<VecDeque<Conn>>,
    available: Condvar,
    capacity: usize,
    busy: AtomicU64,
}

impl ConnQueue {
    fn new(capacity: usize) -> ConnQueue {
        ConnQueue {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity: capacity.max(1),
            busy: AtomicU64::new(0),
        }
    }

    /// Enqueues a connection; gives it back when the queue is full (the
    /// caller answers 503).
    fn push(&self, conn: Conn) -> Result<(), Conn> {
        let mut queue = self.lock();
        if queue.len() >= self.capacity {
            return Err(conn);
        }
        queue.push_back(conn);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once `stop` is set and the
    /// queue has drained (workers finish queued work before exiting).
    fn pop(&self, stop: &AtomicBool) -> Option<Conn> {
        let mut queue = self.lock();
        loop {
            if let Some(conn) = queue.pop_front() {
                return Some(conn);
            }
            if stop.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .available
                .wait_timeout(queue, Duration::from_millis(50))
                .unwrap_or_else(|e| {
                    let (guard, timeout) = e.into_inner();
                    (guard, timeout)
                });
            queue = guard;
        }
    }

    fn depth(&self) -> u64 {
        self.lock().len() as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<Conn>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A running daemon: the session registry plus the accept loop's and
/// worker pool's lifecycle.
pub struct Daemon {
    registry: Arc<SessionRegistry>,
    default_session: Arc<Session>,
    metrics: Arc<ServiceMetrics>,
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<ConnQueue>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Binds `addr` (use port 0 for an OS-assigned free port) and starts
    /// serving with default pool settings and no journaling.
    pub fn start(addr: &str, cfg: SessionConfig) -> Result<Daemon, ServeError> {
        Daemon::start_with(addr, DaemonConfig::new(cfg))
    }

    /// Binds `addr` and starts the accept loop plus the worker pool.
    pub fn start_with(addr: &str, cfg: DaemonConfig) -> Result<Daemon, ServeError> {
        let metrics = Arc::new(ServiceMetrics::new());
        let registry = match (&cfg.journal_dir, cfg.recover) {
            (Some(dir), true) => {
                SessionRegistry::recover(cfg.session.clone(), dir, Arc::clone(&metrics))?
            }
            _ => SessionRegistry::new(
                cfg.session.clone(),
                cfg.journal_dir.clone(),
                Arc::clone(&metrics),
            )?,
        };
        let registry = Arc::new(registry);
        let default_session = registry.default_session();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue::new(cfg.queue_capacity));

        let accept_stop = Arc::clone(&stop);
        let accept_queue = Arc::clone(&queue);
        let accept_metrics = Arc::clone(&metrics);
        let accept_thread = std::thread::Builder::new()
            .name("fairschedd-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let Ok(reader_stream) = stream.try_clone() else {
                        continue;
                    };
                    let conn = Conn {
                        stream,
                        reader: BufReader::new(reader_stream),
                    };
                    if let Err(mut conn) = accept_queue.push(conn) {
                        // Explicit backpressure: the queue is full, so
                        // shed this connection rather than grow without
                        // bound.
                        let _ = write_response(
                            &mut conn.stream,
                            503,
                            "application/json",
                            "{\"error\":\"overloaded\",\"detail\":\"accept queue full\"}",
                            true,
                        );
                        accept_metrics.observe_request("other", 503, 0);
                    }
                    accept_metrics
                        .accept_queue_depth
                        .set_u64(accept_queue.depth());
                }
            })
            .map_err(ServeError::from)?;

        let mut workers = Vec::with_capacity(cfg.workers.max(1));
        for i in 0..cfg.workers.max(1) {
            let queue = Arc::clone(&queue);
            let registry = Arc::clone(&registry);
            let metrics = Arc::clone(&metrics);
            let stop = Arc::clone(&stop);
            let handle = std::thread::Builder::new()
                .name(format!("fairschedd-worker-{i}"))
                .spawn(move || worker_loop(&queue, &registry, &metrics, &stop))
                .map_err(ServeError::from)?;
            workers.push(handle);
        }

        Ok(Daemon {
            registry,
            default_session,
            metrics,
            addr: local,
            stop,
            queue,
            accept_thread: Some(accept_thread),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The default session, for in-process use (tests, `quickserve`).
    pub fn session(&self) -> &Arc<Session> {
        &self.default_session
    }

    /// The session registry behind the daemon.
    pub fn registry(&self) -> &Arc<SessionRegistry> {
        &self.registry
    }

    /// The daemon-wide metrics registry.
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        &self.metrics
    }

    /// Whether a shutdown request (or [`Daemon::shutdown`]) has flagged
    /// the accept loop down.
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Graceful drain: stops accepting, lets the pool finish queued and
    /// in-flight requests (idle keep-alive connections are dropped), and
    /// joins every thread. Does not seal sessions; callers decide
    /// whether to finish the schedules.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.queue.available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// What a non-blocking look at a popped connection found.
enum Readiness {
    /// Bytes are waiting (or already buffered): safe to serve.
    Ready,
    /// No bytes yet; the connection is idle keep-alive.
    NotReady,
    /// The peer closed (or the socket errored).
    Closed,
}

fn readiness(conn: &mut Conn) -> Readiness {
    if !conn.reader.buffer().is_empty() {
        return Readiness::Ready;
    }
    if conn.stream.set_nonblocking(true).is_err() {
        return Readiness::Closed;
    }
    let mut probe = [0u8; 1];
    let peeked = conn.stream.peek(&mut probe);
    if conn.stream.set_nonblocking(false).is_err() {
        return Readiness::Closed;
    }
    match peeked {
        Ok(0) => Readiness::Closed,
        Ok(_) => Readiness::Ready,
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Readiness::NotReady,
        Err(_) => Readiness::Closed,
    }
}

fn worker_loop(
    queue: &ConnQueue,
    registry: &SessionRegistry,
    metrics: &ServiceMetrics,
    stop: &AtomicBool,
) {
    // Consecutive idle connections seen: when a sweep of the queue finds
    // only parked keep-alive connections, sleep briefly instead of
    // spinning the requeue cycle.
    let mut idle_streak: u64 = 0;
    while let Some(mut conn) = queue.pop(stop) {
        metrics.accept_queue_depth.set_u64(queue.depth());
        match readiness(&mut conn) {
            Readiness::Closed => {
                idle_streak = 0;
            }
            Readiness::NotReady => {
                if stop.load(Ordering::SeqCst) {
                    // Draining: idle connections are dropped, not held
                    // open.
                    continue;
                }
                idle_streak += 1;
                let requeued = queue.push(conn).is_ok();
                if !requeued || idle_streak > 8 {
                    std::thread::sleep(Duration::from_millis(1));
                    idle_streak = 0;
                }
            }
            Readiness::Ready => {
                idle_streak = 0;
                queue.busy.fetch_add(1, Ordering::SeqCst);
                metrics
                    .pool_workers_busy
                    .set_u64(queue.busy.load(Ordering::SeqCst));
                let keep = serve_ready(conn, registry, metrics, queue, stop);
                queue.busy.fetch_sub(1, Ordering::SeqCst);
                metrics
                    .pool_workers_busy
                    .set_u64(queue.busy.load(Ordering::SeqCst));
                if let Some(conn) = keep {
                    if queue.push(conn).is_err() {
                        // Full queue on requeue: the connection is shed;
                        // the client reconnects.
                    }
                }
            }
        }
    }
}

/// Serves requests on a ready connection until it goes idle (returned
/// for requeueing), closes, errors, or upgrades to a trace stream.
fn serve_ready(
    mut conn: Conn,
    registry: &SessionRegistry,
    metrics: &ServiceMetrics,
    queue: &ConnQueue,
    stop: &AtomicBool,
) -> Option<Conn> {
    loop {
        let req = match read_request(&mut conn.reader) {
            Ok(Some(req)) => req,
            Ok(None) => return None,
            Err(e) => {
                let err = ServeError::BadRequest {
                    detail: e.to_string(),
                };
                let _ = write_response(
                    &mut conn.stream,
                    err.status(),
                    "application/json",
                    &err.to_json().render(),
                    true,
                );
                return None;
            }
        };
        let started = Instant::now();
        let label = route_label(&req.path);

        // Resolve the target session and the session-relative path.
        let (session, path) = match resolve(&req.path, registry) {
            Ok(pair) => pair,
            Err(e) => {
                let status = e.status();
                let ok = write_response(
                    &mut conn.stream,
                    status,
                    "application/json",
                    &e.to_json().render(),
                    req.close,
                )
                .is_ok();
                metrics.observe_request(label, status, elapsed_ns(started));
                if !ok || req.close {
                    return None;
                }
                continue;
            }
        };

        if req.method == "GET" && path == "/v1/trace" {
            // The stream lives as long as the session; it must not
            // occupy a pool worker. Time only the setup.
            metrics.observe_request(label, 200, elapsed_ns(started));
            let _ = std::thread::Builder::new()
                .name("fairschedd-trace".into())
                .spawn(move || stream_trace(conn.stream, &session));
            return None;
        }

        let (status, content_type, body) = if req.method == "GET" && path == "/metrics" {
            metrics.accept_queue_depth.set_u64(queue.depth());
            metrics
                .pool_workers_busy
                .set_u64(queue.busy.load(Ordering::SeqCst));
            (
                200,
                "text/plain; version=0.0.4",
                metrics.render(&registry.default_session()),
            )
        } else {
            match route(&req, &path, &session, registry, stop) {
                Ok(body) => (200, "application/json", body.render()),
                Err(e) => (e.status(), "application/json", e.to_json().render()),
            }
        };
        let ok = write_response(&mut conn.stream, status, content_type, &body, req.close).is_ok();
        metrics.observe_request(label, status, elapsed_ns(started));
        if !ok || req.close {
            return None;
        }
        // Keep-alive: serve pipelined bytes immediately, requeue an idle
        // connection so this worker can pick up other work.
        match readiness(&mut conn) {
            Readiness::Ready => continue,
            Readiness::NotReady => return Some(conn),
            Readiness::Closed => return None,
        }
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Maps a request path onto its target session and the session-relative
/// route: `/v1/sessions/{name}/<rest>` addresses the named session's
/// `/v1/<rest>`, everything else the default session. `/v1/sessions`
/// and `/v1/sessions/{name}` themselves pass through (the registry
/// routes handle them against the default session handle).
fn resolve(path: &str, registry: &SessionRegistry) -> Result<(Arc<Session>, String), ServeError> {
    if let Some(rest) = path.strip_prefix("/v1/sessions/") {
        if let Some((name, inner)) = rest.split_once('/') {
            if !inner.is_empty() {
                return Ok((registry.get(name)?, format!("/v1/{inner}")));
            }
        }
    }
    Ok((registry.default_session(), path.to_string()))
}

fn route(
    req: &Request,
    path: &str,
    session: &Arc<Session>,
    registry: &SessionRegistry,
    stop: &AtomicBool,
) -> Result<Json, ServeError> {
    match (req.method.as_str(), path) {
        ("POST", "/v1/jobs") => {
            let submit = SubmitRequest::from_json(&parse(&req.body)?)?;
            session.submit_batched(&submit).map(|r| r.to_json())
        }
        ("GET", "/v1/status") => Ok(session.status().to_json()),
        ("POST", "/v1/advance") => {
            let to = parse(&req.body)?
                .get("to")
                .and_then(Json::as_u64)
                .ok_or_else(|| ServeError::BadRequest {
                    detail: "missing field `to`".into(),
                })?;
            session.advance_to(to).map(|r| r.to_json())
        }
        ("POST", "/v1/tick") => session.tick().map(|r| r.to_json()),
        ("GET", "/v1/sessions") => {
            let rows = registry
                .list()
                .into_iter()
                .map(|(name, status)| {
                    let mut obj = status.to_json();
                    if let Json::Obj(map) = &mut obj {
                        map.insert("name".into(), Json::Str(name));
                    }
                    obj
                })
                .collect();
            Ok(Json::obj([("sessions", Json::Arr(rows))]))
        }
        ("POST", "/v1/sessions") => {
            let spec = SessionSpec::from_json(&parse(&req.body)?)?;
            let session = registry.create(&spec)?;
            let mut obj = session.status().to_json();
            if let Json::Obj(map) = &mut obj {
                map.insert("name".into(), Json::Str(spec.name));
                map.insert("created".into(), Json::Bool(true));
            }
            Ok(obj)
        }
        ("GET", p) if session_name(p).is_some() => {
            let name = session_name(p).expect("guard");
            let session = registry.get(name)?;
            let mut obj = session.status().to_json();
            if let Json::Obj(map) = &mut obj {
                map.insert("name".into(), Json::Str(name.into()));
            }
            Ok(obj)
        }
        ("DELETE", p) if session_name(p).is_some() => {
            let name = session_name(p).expect("guard");
            registry.delete(name)?;
            Ok(Json::obj([("deleted", Json::Str(name.into()))]))
        }
        ("GET", p) if p.starts_with("/v1/explain/") => {
            let id =
                p["/v1/explain/".len()..]
                    .parse::<u32>()
                    .map_err(|_| ServeError::BadRequest {
                        detail: "explain id must be an integer".into(),
                    })?;
            let breakdown = session.explain(JobId(id))?;
            Ok(match breakdown {
                None => Json::obj([("found", Json::Bool(false))]),
                Some(b) => Json::obj([
                    ("found", Json::Bool(true)),
                    ("job", Json::UInt(b.job.0.into())),
                    ("submit", Json::UInt(b.submit)),
                    ("start", Json::UInt(b.start)),
                    ("capacity_wait", Json::UInt(b.capacity_wait)),
                    ("reservation_wait", Json::UInt(b.reservation_wait)),
                ]),
            })
        }
        ("GET", p) if p.starts_with("/v1/jobs/") => {
            let id = p["/v1/jobs/".len()..]
                .parse::<u32>()
                .map_err(|_| ServeError::BadRequest {
                    detail: "job id must be an integer".into(),
                })?;
            Ok(match session.record_of(JobId(id)) {
                None => Json::obj([("found", Json::Bool(false))]),
                Some(r) => {
                    let mut obj = api::record_to_json(&r);
                    if let Json::Obj(map) = &mut obj {
                        map.insert("found".into(), Json::Bool(true));
                    }
                    obj
                }
            })
        }
        ("GET", "/v1/fairness") => {
            let (snap, users) = session.fairness();
            Ok(api::fairness_to_json(&snap, &users))
        }
        ("GET", "/v1/profile") => {
            let report = session.profile();
            Ok(Json::obj([
                ("wall_ns", Json::UInt(report.wall_ns)),
                ("sched_passes", Json::UInt(report.counters.sched_passes)),
                (
                    "backfill_attempts",
                    Json::UInt(report.counters.backfill_attempts),
                ),
                (
                    "backfill_successes",
                    Json::UInt(report.counters.backfill_successes),
                ),
                ("steps", Json::UInt(session.steps())),
                ("text", Json::Str(report.to_string())),
            ]))
        }
        ("POST", "/v1/seal") => session.seal().map(|r| r.to_json()),
        ("POST", "/v1/shutdown") => {
            // Seal every session so trace subscribers see the close; then
            // flag the accept loop down. The response goes out first
            // because the connection already exists.
            let sealed_now = !session.status().sealed;
            registry.seal_all();
            stop.store(true, Ordering::SeqCst);
            Ok(Json::obj([
                ("stopping", Json::Bool(true)),
                ("sealed_now", Json::Bool(sealed_now)),
            ]))
        }
        (_, p) if p.starts_with("/v1/") => Err(ServeError::BadRequest {
            detail: format!("no route for {} {}", req.method, p),
        }),
        _ => Err(ServeError::BadRequest {
            detail: "unknown path; the API lives under /v1/".into(),
        }),
    }
}

/// The `{name}` of a bare `/v1/sessions/{name}` path (no trailing
/// segment), if this is one.
fn session_name(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("/v1/sessions/")?;
    if rest.is_empty() || rest.contains('/') {
        return None;
    }
    Some(rest)
}

/// Streams trace records as JSONL until the session seals (subscribers
/// get a `None` terminator), the session drops this reader for falling
/// behind, or the client goes away. The final line reports how many
/// lines the session had to drop on this subscriber — 0 for a reader
/// that kept up, nonzero when the stream is incomplete.
fn stream_trace(mut stream: TcpStream, session: &Session) {
    let sub = session.subscribe();
    if write_stream_header(&mut stream, "application/jsonl").is_err() {
        return;
    }
    let severed = loop {
        match sub.recv() {
            Ok(Some(line)) => {
                if stream
                    .write_all(line.as_bytes())
                    .and_then(|()| stream.write_all(b"\n"))
                    .is_err()
                {
                    return;
                }
            }
            Ok(None) => break false,
            Err(_) => break true,
        }
    };
    let close = Json::obj([
        ("trace_end", Json::Bool(true)),
        ("severed", Json::Bool(severed)),
        ("dropped", Json::UInt(sub.dropped())),
    ])
    .render();
    let _ = stream
        .write_all(close.as_bytes())
        .and_then(|()| stream.write_all(b"\n"));
    let _ = stream.flush();
}
