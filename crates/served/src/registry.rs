//! The routing layer: many named sessions behind one daemon.
//!
//! A [`SessionRegistry`] maps session names to independent [`Session`]s.
//! Every session gets its own policy, machine size, and durability
//! journal; they share one [`ServiceMetrics`] registry (request
//! accounting and journal counters aggregate daemon-wide, while the
//! unlabeled session gauges keep reflecting the default session so
//! existing dashboards and the CI smoke check stay valid).
//!
//! The registry owns the recovery path too: [`SessionRegistry::recover`]
//! scans the journal directory, replays each journal into a fresh core
//! under a manual clock (so wall time cannot contaminate the replayed
//! grant sequence), then re-adopts each session's configured clock mode
//! and reopens its journal for append. A recovered session continues
//! exactly where the acknowledged history ends — the schedule it seals is
//! byte-identical to an uninterrupted run over the same submissions.
//!
//! One name is special: [`DEFAULT_SESSION`] backs the unprefixed `/v1/*`
//! routes, always exists, and cannot be deleted.

use crate::api::{ServeError, SessionSpec, StatusResponse};
use crate::clock::ClockMode;
use crate::journal::{
    self, journal_path, scan_dir, valid_session_name, JournalEvent, SessionJournal,
};
use crate::metrics::ServiceMetrics;
use crate::session::{Session, SessionConfig};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// The session behind the unprefixed `/v1/*` routes.
pub const DEFAULT_SESSION: &str = "default";

/// Named sessions behind one daemon. Thread-safe; the daemon shares it
/// across pool workers.
pub struct SessionRegistry {
    sessions: Mutex<HashMap<String, Arc<Session>>>,
    /// Template for sessions created without explicit overrides (and the
    /// default session's exact configuration).
    template: SessionConfig,
    /// Where per-session journals live; `None` disables durability.
    journal_dir: Option<PathBuf>,
    metrics: Arc<ServiceMetrics>,
}

impl SessionRegistry {
    /// A registry with a fresh default session configured from
    /// `template`. When `journal_dir` is set, the default session (and
    /// every session created later) journals to it.
    pub fn new(
        template: SessionConfig,
        journal_dir: Option<PathBuf>,
        metrics: Arc<ServiceMetrics>,
    ) -> Result<SessionRegistry, ServeError> {
        let registry = SessionRegistry {
            sessions: Mutex::new(HashMap::new()),
            template,
            journal_dir,
            metrics,
        };
        let default = registry.build(DEFAULT_SESSION, registry.template.clone())?;
        registry.lock().insert(DEFAULT_SESSION.into(), default);
        Ok(registry)
    }

    /// A registry rebuilt from the journals in `journal_dir`: every
    /// journal with a valid header becomes a session whose core replayed
    /// the journaled history. Sessions without a journal (including the
    /// default, if its journal is missing) start fresh.
    pub fn recover(
        template: SessionConfig,
        journal_dir: &Path,
        metrics: Arc<ServiceMetrics>,
    ) -> Result<SessionRegistry, ServeError> {
        let registry = SessionRegistry {
            sessions: Mutex::new(HashMap::new()),
            template,
            journal_dir: Some(journal_dir.to_path_buf()),
            metrics,
        };
        for (name, path) in scan_dir(journal_dir).map_err(|e| ServeError::Io(e.to_string()))? {
            match journal::replay(&path)? {
                Some(recovered) => {
                    let session = registry.rebuild(&path, recovered)?;
                    registry.lock().insert(name, session);
                }
                // Headerless journals (truncated before the first sync)
                // describe sessions that never acknowledged anything;
                // nothing to recover.
                None => fairsched_obs::log::warn(format!(
                    "journal {} has no valid header; skipping",
                    path.display()
                )),
            }
        }
        if !registry.lock().contains_key(DEFAULT_SESSION) {
            let default = registry.build(DEFAULT_SESSION, registry.template.clone())?;
            registry.lock().insert(DEFAULT_SESSION.into(), default);
        }
        Ok(registry)
    }

    /// Replays one recovered journal into a fresh session. The replay
    /// runs under a manual clock regardless of the configured mode — a
    /// realtime clock tracks the wall and would outrun the journaled
    /// grant sequence, rejecting submissions the original run accepted.
    /// Once the history is re-applied the configured mode is adopted from
    /// the replayed horizon, and the journal reopens for append.
    fn rebuild(
        &self,
        path: &Path,
        recovered: journal::RecoveredSession,
    ) -> Result<Arc<Session>, ServeError> {
        let configured_clock = recovered.config.clock;
        let mut cfg = recovered.config;
        cfg.clock = ClockMode::Manual;
        let session = Session::with_metrics(cfg, Arc::clone(&self.metrics))?;
        for event in recovered.events {
            match event {
                JournalEvent::Submit(req) => {
                    // Every journaled submission was accepted once, so it
                    // must replay cleanly; a rejection means the journal
                    // and core disagree — keep going, but say so.
                    if let Err(e) = session.submit(&req) {
                        fairsched_obs::log::warn(format!(
                            "journal {}: job {} did not replay: {e}",
                            path.display(),
                            req.id
                        ));
                    }
                }
                JournalEvent::Grant(to) => {
                    session.advance_to(to)?;
                }
                JournalEvent::Seal => {
                    session.seal()?;
                }
            }
        }
        session.adopt_clock(configured_clock);
        if !session.status().sealed {
            let journal =
                SessionJournal::append(path).map_err(|e| ServeError::Io(e.to_string()))?;
            session.attach_journal(journal);
        }
        Ok(Arc::new(session))
    }

    /// Builds (and journals, when durability is on) one fresh session.
    fn build(&self, name: &str, cfg: SessionConfig) -> Result<Arc<Session>, ServeError> {
        let session = Session::with_metrics(cfg.clone(), Arc::clone(&self.metrics))?;
        if let Some(dir) = &self.journal_dir {
            let journal = SessionJournal::create(dir, name, &cfg)
                .map_err(|e| ServeError::Io(e.to_string()))?;
            session.attach_journal(journal);
        }
        Ok(Arc::new(session))
    }

    /// The named session, or [`ServeError::UnknownSession`].
    pub fn get(&self, name: &str) -> Result<Arc<Session>, ServeError> {
        self.lock()
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownSession { name: name.into() })
    }

    /// The session behind the unprefixed routes.
    pub fn default_session(&self) -> Arc<Session> {
        self.lock()
            .get(DEFAULT_SESSION)
            .cloned()
            .expect("the default session always exists")
    }

    /// Creates a named session; unset spec fields inherit the registry's
    /// template configuration.
    pub fn create(&self, spec: &SessionSpec) -> Result<Arc<Session>, ServeError> {
        if !valid_session_name(&spec.name) {
            return Err(ServeError::InvalidSessionName {
                name: spec.name.clone(),
            });
        }
        let mut cfg = self.template.clone();
        if let Some(policy) = &spec.policy {
            cfg.policy = policy.clone();
        }
        if let Some(nodes) = spec.nodes {
            cfg.nodes = nodes;
        }
        if let Some(id_floor) = spec.id_floor {
            cfg.id_floor = id_floor;
        }
        // Build outside the map lock (journal creation does IO), then
        // insert only if still absent — losing the race means the other
        // creator's session wins and ours (and its journal) is replaced.
        if self.lock().contains_key(&spec.name) {
            return Err(ServeError::DuplicateSession {
                name: spec.name.clone(),
            });
        }
        let session = self.build(&spec.name, cfg)?;
        let mut sessions = self.lock();
        if sessions.contains_key(&spec.name) {
            return Err(ServeError::DuplicateSession {
                name: spec.name.clone(),
            });
        }
        sessions.insert(spec.name.clone(), Arc::clone(&session));
        Ok(session)
    }

    /// Deletes a named session and its journal (so a later `--recover`
    /// does not resurrect it). The default session cannot be deleted.
    pub fn delete(&self, name: &str) -> Result<(), ServeError> {
        if name == DEFAULT_SESSION {
            return Err(ServeError::BadRequest {
                detail: "the default session cannot be deleted".into(),
            });
        }
        let session = self
            .lock()
            .remove(name)
            .ok_or_else(|| ServeError::UnknownSession { name: name.into() })?;
        // Seal so trace subscribers see a close rather than a hang;
        // already-sealed is fine.
        let _ = session.seal();
        if let Some(dir) = &self.journal_dir {
            let path = journal_path(dir, name);
            if let Err(e) = std::fs::remove_file(&path) {
                if e.kind() != std::io::ErrorKind::NotFound {
                    fairsched_obs::log::warn(format!(
                        "could not remove journal {}: {e}",
                        path.display()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Session names with their live status, sorted by name.
    pub fn list(&self) -> Vec<(String, StatusResponse)> {
        let sessions: Vec<(String, Arc<Session>)> = self
            .lock()
            .iter()
            .map(|(name, session)| (name.clone(), Arc::clone(session)))
            .collect();
        let mut rows: Vec<(String, StatusResponse)> = sessions
            .into_iter()
            .map(|(name, session)| {
                let status = session.status();
                (name, status)
            })
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Every live session (for the heartbeat tick and graceful drain).
    pub fn sessions(&self) -> Vec<Arc<Session>> {
        self.lock().values().cloned().collect()
    }

    /// Seals every session that is not already sealed (daemon shutdown).
    pub fn seal_all(&self) {
        for session in self.sessions() {
            let _ = session.seal();
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Arc<Session>>> {
        self.sessions.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::SubmitRequest;

    fn template() -> SessionConfig {
        SessionConfig {
            policy: "easy.nomax".into(),
            nodes: 32,
            clock: ClockMode::Manual,
            ..Default::default()
        }
    }

    fn registry(dir: Option<&Path>) -> SessionRegistry {
        SessionRegistry::new(
            template(),
            dir.map(Path::to_path_buf),
            Arc::new(ServiceMetrics::new()),
        )
        .unwrap()
    }

    fn req(id: u32, submit: u64) -> SubmitRequest {
        SubmitRequest {
            id,
            user: 1,
            group: 1,
            submit,
            nodes: 4,
            runtime: 100,
            estimate: 100,
        }
    }

    #[test]
    fn the_default_session_always_exists_and_resists_deletion() {
        let reg = registry(None);
        reg.get(DEFAULT_SESSION).unwrap();
        assert!(matches!(
            reg.delete(DEFAULT_SESSION),
            Err(ServeError::BadRequest { .. })
        ));
    }

    #[test]
    fn sessions_are_independent_and_inherit_template_overrides() {
        let reg = registry(None);
        let spec = SessionSpec {
            name: "team-a".into(),
            policy: Some("fcfs.nobackfill".into()),
            nodes: Some(64),
            id_floor: None,
        };
        let a = reg.create(&spec).unwrap();
        assert_eq!(a.config().policy, "fcfs.nobackfill");
        assert_eq!(a.config().nodes, 64);
        a.submit(&req(1, 0)).unwrap();
        // The default session never saw team-a's submission.
        assert_eq!(reg.default_session().status().accepted, 0);
        assert_eq!(a.status().accepted, 1);

        assert!(matches!(
            reg.create(&SessionSpec::named("team-a")),
            Err(ServeError::DuplicateSession { .. })
        ));
        assert!(matches!(
            reg.create(&SessionSpec::named("bad name!")),
            Err(ServeError::InvalidSessionName { .. })
        ));
        assert!(matches!(
            reg.get("nope"),
            Err(ServeError::UnknownSession { .. })
        ));

        reg.delete("team-a").unwrap();
        assert!(reg.get("team-a").is_err());
        assert_eq!(reg.list().len(), 1);
    }

    #[test]
    fn recovery_rebuilds_every_journaled_session_identically() {
        let dir = std::env::temp_dir().join(format!("fairsched-reg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // First life: two sessions, different policies, interleaved work.
        let reg = registry(Some(&dir));
        let b = reg
            .create(&SessionSpec {
                name: "burst".into(),
                policy: Some("cplant24.nomax.all".into()),
                nodes: None,
                id_floor: None,
            })
            .unwrap();
        let d = reg.default_session();
        d.submit(&req(1, 0)).unwrap();
        b.submit(&req(1, 0)).unwrap();
        d.submit(&req(2, 10)).unwrap();
        d.advance_to(50).unwrap();
        b.submit(&req(2, 20)).unwrap();
        // Simulate the crash: drop the registry without sealing.
        drop((reg, b, d));

        let reg2 =
            SessionRegistry::recover(template(), &dir, Arc::new(ServiceMetrics::new())).unwrap();
        let d2 = reg2.get(DEFAULT_SESSION).unwrap();
        let b2 = reg2.get("burst").unwrap();
        assert_eq!(d2.status().accepted, 2);
        assert_eq!(d2.status().granted, 50);
        assert_eq!(b2.status().accepted, 2);
        assert_eq!(b2.config().policy, "cplant24.nomax.all");

        // The recovered sessions keep working and journaling: more
        // submissions, then a second crash and recovery.
        d2.submit(&req(3, 60)).unwrap();
        drop((reg2, d2, b2));
        let reg3 =
            SessionRegistry::recover(template(), &dir, Arc::new(ServiceMetrics::new())).unwrap();
        let d3 = reg3.get(DEFAULT_SESSION).unwrap();
        assert_eq!(d3.status().accepted, 3);
        let sealed = d3.seal().unwrap();

        // Reference: the same submissions against a fresh session.
        let fresh = registry(None).default_session();
        fresh.submit(&req(1, 0)).unwrap();
        fresh.submit(&req(2, 10)).unwrap();
        fresh.advance_to(50).unwrap();
        fresh.submit(&req(3, 60)).unwrap();
        let reference = fresh.seal().unwrap();
        assert_eq!(sealed.schedule_fnv, reference.schedule_fnv);
        assert_eq!(d3.schedule(), fresh.schedule());

        // A sealed session's journal recovers as sealed.
        let reg4 =
            SessionRegistry::recover(template(), &dir, Arc::new(ServiceMetrics::new())).unwrap();
        assert!(reg4.get(DEFAULT_SESSION).unwrap().status().sealed);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
