//! Kill-and-recover integration test for `fairschedd --journal-dir`.
//!
//! The acceptance property of the durability layer: a daemon SIGKILLed
//! mid-load (no destructors, no flush beyond the per-line discipline)
//! and restarted with `--recover` must continue every session exactly
//! where the acknowledged history ends, and the schedule it finally
//! seals must be byte-identical (same `schedule_fnv`) to an
//! uninterrupted run over the same submissions.
//!
//! The client contract under a crash: an **acknowledged** submission is
//! journaled and survives; an unacknowledged one (error or no response)
//! may or may not have reached the journal — the client resubmits, and
//! `DuplicateId` on resubmission means it survived. This test exercises
//! exactly that protocol.

use fairsched_core::policy::PolicySpec;
use fairsched_served::api::schedule_fingerprint;
use fairsched_served::{Client, ServeError, SubmitRequest};
use fairsched_sim::{simulate, NullObserver, SimOptions};
use fairsched_workload::job::Job;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_fairschedd");
const POLICY: &str = "easy.nomax";
const NODES: u32 = 64;
const JOBS: usize = 240;
/// Simulated time granted (and journaled) before any submission; every
/// job is dated at or past `HORIZON`, so resubmissions after recovery
/// can never be rejected as non-monotonic.
const GRANT: u64 = 500;
const HORIZON: u64 = 1000;

fn daemon_cmd(dir: &Path, port_file: &Path, recover: bool) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args([
        "--port",
        "0",
        "--manual",
        "--policy",
        POLICY,
        "--nodes",
        &NODES.to_string(),
    ]);
    cmd.arg("--port-file").arg(port_file);
    cmd.arg("--journal-dir").arg(dir);
    if recover {
        cmd.arg("--recover");
    }
    cmd.stdout(Stdio::null());
    cmd.stderr(Stdio::piped());
    cmd
}

fn wait_for_client(port_file: &Path, child: &mut Child) -> Client {
    let deadline = Instant::now() + Duration::from_secs(60);
    let port: u16 = loop {
        assert!(Instant::now() < deadline, "daemon never wrote its port");
        if let Some(status) = child.try_wait().unwrap() {
            panic!("daemon exited early: {status}");
        }
        if let Ok(text) = std::fs::read_to_string(port_file) {
            if let Ok(port) = text.trim().parse() {
                break port;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    Client::new(format!("127.0.0.1:{port}").parse().unwrap()).with_timeout(Duration::from_secs(10))
}

fn workload() -> Vec<Job> {
    (0..JOBS as u32)
        .map(|i| {
            Job::new(
                i + 1,
                i % 9 + 1,
                1,
                HORIZON + u64::from(i) * 7,
                (i % 24) + 1,
                150 + u64::from(i % 40) * 11,
                400 + u64::from(i % 40) * 11,
            )
        })
        .collect()
}

#[test]
fn a_sigkilled_daemon_recovers_to_a_byte_identical_schedule() {
    let dir = std::env::temp_dir().join(format!("fairschedd-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journal_dir = dir.join("journals");
    let jobs = workload();

    // ---- First life: journal on, killed mid-load. -------------------
    let port_file: PathBuf = dir.join("port1");
    let mut child = daemon_cmd(&journal_dir, &port_file, false).spawn().unwrap();
    let client = wait_for_client(&port_file, &mut child);
    client.advance(GRANT).expect("pre-load grant");

    let acked: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let dead = Arc::new(AtomicBool::new(false));
    let submitters: Vec<_> = (0..8)
        .map(|t| {
            let client = client.clone();
            let acked = Arc::clone(&acked);
            let dead = Arc::clone(&dead);
            let share: Vec<SubmitRequest> = jobs
                .iter()
                .skip(t)
                .step_by(8)
                .map(SubmitRequest::from_job)
                .collect();
            std::thread::spawn(move || {
                for req in share {
                    if dead.load(Ordering::SeqCst) {
                        break;
                    }
                    match client.submit(&req) {
                        Ok(_) => acked.lock().unwrap().push(req.id),
                        // The daemon died under us; everything from here
                        // on is unacknowledged.
                        Err(_) => break,
                    }
                    // Slow the flood slightly so the kill lands mid-run.
                    std::thread::sleep(Duration::from_micros(300));
                }
            })
        })
        .collect();

    // Kill — SIGKILL, no destructors — once a third of the jobs are in.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(
            Instant::now() < deadline,
            "load never reached the kill point"
        );
        let in_flight = acked.lock().unwrap().len();
        if in_flight >= JOBS / 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    child.kill().unwrap();
    let _ = child.wait();
    dead.store(true, Ordering::SeqCst);
    for t in submitters {
        t.join().unwrap();
    }

    let acked: Vec<u32> = acked.lock().unwrap().clone();
    assert!(
        acked.len() >= JOBS / 3 && acked.len() < JOBS,
        "kill landed outside the useful window: {} of {JOBS} acked",
        acked.len()
    );

    // ---- Second life: --recover replays the journals. ---------------
    let port_file = dir.join("port2");
    let mut child = daemon_cmd(&journal_dir, &port_file, true).spawn().unwrap();
    let client = wait_for_client(&port_file, &mut child);

    let status = client.status().expect("post-recovery status");
    assert_eq!(
        status.granted, GRANT,
        "the journaled grant horizon must survive the crash"
    );
    assert!(
        status.accepted >= acked.len() as u64,
        "recovery lost acknowledged submissions: {} < {}",
        status.accepted,
        acked.len()
    );

    // The resubmission protocol: every job not acknowledged before the
    // kill is submitted again. DuplicateId means it was journaled (the
    // ack was lost, not the row) — both outcomes count as present.
    let acked_set: std::collections::HashSet<u32> = acked.iter().copied().collect();
    let mut resubmitted = 0usize;
    let mut already_there = 0usize;
    for job in jobs.iter().filter(|j| !acked_set.contains(&j.id.0)) {
        match client.submit(&SubmitRequest::from_job(job)) {
            Ok(_) => resubmitted += 1,
            Err(ServeError::DuplicateId { .. }) => already_there += 1,
            Err(e) => panic!("resubmission of {} failed: {e}", job.id.0),
        }
    }
    assert_eq!(
        acked.len() + resubmitted + already_there,
        JOBS,
        "every job must end up accepted exactly once"
    );
    let status = client.status().expect("status after resubmission");
    assert_eq!(status.accepted, JOBS as u64);

    // Seal and compare against the uninterrupted reference: the batch
    // simulation of the same jobs (replay equivalence pins online ==
    // batch, so this is what an unkilled daemon would have produced).
    let seal = client.seal().expect("seal");
    let spec = PolicySpec::parse(POLICY).unwrap();
    let mut reference_jobs = jobs.clone();
    reference_jobs.sort_by_key(|j| j.id);
    let reference = simulate(
        &reference_jobs,
        &spec.sim_config(NODES),
        &mut NullObserver,
        SimOptions::new(),
    )
    .unwrap();
    assert_eq!(seal.records, reference.records.len() as u64);
    assert_eq!(
        seal.schedule_fnv,
        schedule_fingerprint(&reference),
        "recovered schedule diverged from the uninterrupted reference"
    );

    client.shutdown().expect("shutdown");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
