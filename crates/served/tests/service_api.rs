//! End-to-end tests for `fairschedd` over real HTTP: a daemon on an
//! OS-assigned port, the typed client, trace streaming, typed rejections
//! crossing the wire, and clean shutdown.

use fairsched_served::clock::ClockMode;
use fairsched_served::session::SessionConfig;
use fairsched_served::{Client, Daemon, ServeError, SubmitRequest};
use fairsched_sim::{simulate, NullObserver, SimOptions};
use fairsched_workload::job::Job;

fn manual_daemon(policy: &str, nodes: u32) -> Daemon {
    Daemon::start(
        "127.0.0.1:0",
        SessionConfig {
            policy: policy.into(),
            nodes,
            clock: ClockMode::Manual,
            traced: true,
            id_floor: 0,
            ..SessionConfig::default()
        },
    )
    .expect("daemon start")
}

fn req(id: u32, user: u32, submit: u64, nodes: u32, runtime: u64) -> SubmitRequest {
    SubmitRequest {
        id,
        user,
        group: 1,
        submit,
        nodes,
        runtime,
        estimate: runtime,
    }
}

#[test]
fn submit_status_advance_seal_over_http() {
    let mut daemon = manual_daemon("easy.nomax", 64);
    let client = Client::new(daemon.addr());

    let ack = client.submit(&req(1, 1, 0, 64, 100)).unwrap();
    assert_eq!(ack.id, 1);
    client.submit(&req(2, 2, 10, 32, 50)).unwrap();

    let status = client.status().unwrap();
    assert_eq!(status.accepted, 2);
    assert_eq!(status.policy, "easy.nomax");
    assert!(!status.sealed);

    let advanced = client.advance(100).unwrap();
    assert_eq!(advanced.now, 100);
    assert!(advanced.started >= 1);

    let seal = client.seal().unwrap();
    assert_eq!(seal.records, 2);
    assert!(seal.makespan > 0);

    let status = client.status().unwrap();
    assert!(status.sealed);
    assert_eq!(status.completed, 2);

    client.shutdown().unwrap();
    daemon.shutdown();
}

#[test]
fn typed_rejections_cross_the_wire() {
    let mut daemon = manual_daemon("easy.nomax", 64);
    let client = Client::new(daemon.addr());

    client.submit(&req(1, 1, 0, 64, 100)).unwrap();
    client.advance(500).unwrap();

    // Non-monotonic: dated before the granted horizon.
    match client.submit(&req(2, 2, 499, 8, 10)) {
        Err(ServeError::NonMonotonicSubmit {
            job,
            submit,
            granted,
        }) => {
            assert_eq!(job.0, 2);
            assert_eq!(submit, 499);
            assert_eq!(granted, 500);
        }
        other => panic!("expected NonMonotonicSubmit, got {other:?}"),
    }

    // Duplicate id.
    match client.submit(&req(1, 1, 600, 8, 10)) {
        Err(ServeError::DuplicateId { job }) => assert_eq!(job.0, 1),
        other => panic!("expected DuplicateId, got {other:?}"),
    }

    // A job wider than the machine is a sim-level rejection.
    assert!(matches!(
        client.submit(&req(3, 1, 600, 1000, 10)),
        Err(ServeError::Sim(_))
    ));

    // Malformed body.
    assert!(matches!(
        client.submit(&req(4, 0, 600, 0, 10)),
        Err(ServeError::Sim(_)) | Err(ServeError::BadRequest { .. })
    ));

    client.shutdown().unwrap();
    daemon.shutdown();
}

#[test]
fn unknown_policy_ids_fail_daemon_startup_typed() {
    let err = match Daemon::start(
        "127.0.0.1:0",
        SessionConfig {
            policy: "not-a-policy".into(),
            ..SessionConfig::default()
        },
    ) {
        Ok(_) => panic!("daemon started under an unknown policy"),
        Err(e) => e,
    };
    match err {
        ServeError::UnknownPolicy(e) => assert_eq!(e.id, "not-a-policy"),
        other => panic!("expected UnknownPolicy, got {other:?}"),
    }
}

#[test]
fn trace_streams_as_jsonl_until_seal() {
    let mut daemon = manual_daemon("cplant24.nomax.all", 32);
    let addr = daemon.addr();
    let streamer = std::thread::spawn(move || Client::new(addr).trace_lines());

    // Give the subscriber a moment to attach before records flow.
    std::thread::sleep(std::time::Duration::from_millis(50));

    let client = Client::new(addr);
    client.submit(&req(1, 1, 0, 32, 100)).unwrap();
    client.submit(&req(2, 2, 5, 16, 80)).unwrap();
    client.submit(&req(3, 3, 9, 32, 20)).unwrap();
    client.seal().unwrap();

    let lines = streamer.join().unwrap().unwrap();
    assert!(!lines.is_empty(), "no trace lines streamed");
    assert!(lines.iter().any(|l| l.contains("job_started")));
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not JSONL: {line}"
        );
    }

    client.shutdown().unwrap();
    daemon.shutdown();
}

#[test]
fn online_http_replay_matches_batch() {
    let jobs = [
        Job::new(1, 1, 1, 0, 24, 300, 400),
        Job::new(2, 2, 1, 20, 16, 500, 500),
        Job::new(3, 1, 1, 40, 8, 100, 200),
        Job::new(4, 3, 1, 350, 32, 50, 60),
        Job::new(5, 2, 1, 360, 4, 700, 900),
    ];
    let spec = fairsched_core::policy::PolicySpec::parse("easy.nomax").unwrap();
    let batch = simulate(
        &jobs,
        &spec.sim_config(32),
        &mut NullObserver,
        SimOptions::new(),
    )
    .unwrap();

    let mut daemon = manual_daemon("easy.nomax", 32);
    let client = Client::new(daemon.addr());
    for job in &jobs {
        // Grant time up to just below each submission first, interleaving
        // grants and submissions the way a live feed would.
        client.advance(job.submit.saturating_sub(1)).unwrap();
        client.submit(&SubmitRequest::from_job(job)).unwrap();
    }
    let seal = client.seal().unwrap();
    assert_eq!(seal.records, batch.records.len() as u64);

    let online = daemon.session().schedule().expect("schedule after seal");
    assert_eq!(online, batch, "online HTTP replay diverged from batch");

    client.shutdown().unwrap();
    daemon.shutdown();
}

#[test]
fn live_explain_and_profile_respond_over_http() {
    let mut daemon = manual_daemon("easy.nomax", 16);
    let client = Client::new(daemon.addr());

    client.submit(&req(1, 1, 0, 16, 200)).unwrap();
    client.submit(&req(2, 2, 10, 16, 50)).unwrap();
    client.advance(200).unwrap();

    let explain = client.explain(2).unwrap();
    assert_eq!(
        explain.get("found").and_then(|v| v.as_bool()),
        Some(true),
        "started job must explain live: {explain:?}"
    );
    assert_eq!(explain.get("start").and_then(|v| v.as_u64()), Some(200));

    let profile = client.profile().unwrap();
    assert!(profile.get("wall_ns").and_then(|v| v.as_u64()).unwrap() > 0);
    assert!(profile.get("steps").and_then(|v| v.as_u64()).unwrap() >= 3);

    client.shutdown().unwrap();
    daemon.shutdown();
}
