//! # fairsched-cli
//!
//! The command-line face of the workspace. Four subcommands:
//!
//! ```text
//! fairsched generate --seed 42 --scale 0.1 --nodes 1024 --out trace.swf
//! fairsched simulate --trace trace.swf --policy cplant24.nomax.all
//! fairsched compare  --trace trace.swf [--policy A --policy B …]
//! fairsched audit    --trace trace.swf --policy cons.72max
//! ```
//!
//! All logic lives in this library (parsing, dispatch, rendering) so it is
//! unit-testable; `main.rs` is a two-liner. Argument parsing is hand-rolled:
//! four flags per command do not justify a dependency.

use fairsched_core::policy::PolicySpec;
use fairsched_core::runner::run_policy;
use fairsched_core::sweep::run_policies;
use fairsched_metrics::fairness::peruser::{heavy_vs_light_miss, per_user};
use fairsched_workload::swf::{read_swf_file, write_swf_file};
use fairsched_workload::synthetic::DEFAULT_NODES;
use fairsched_workload::time::format_duration;
use fairsched_workload::CplantModel;
use std::fmt::Write as _;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic trace and write it as SWF.
    Generate {
        /// Generator seed.
        seed: u64,
        /// Fraction of the Table-1 mix.
        scale: f64,
        /// Machine size.
        nodes: u32,
        /// Output path.
        out: String,
    },
    /// Simulate one policy over a trace and print its metrics.
    Simulate {
        /// SWF trace path.
        trace: String,
        /// Policy id (see `PolicySpec::by_id`).
        policy: String,
        /// Machine size.
        nodes: u32,
    },
    /// Run several policies (default: the paper's nine) side by side.
    Compare {
        /// SWF trace path.
        trace: String,
        /// Policy ids; empty = the paper's nine.
        policies: Vec<String>,
        /// Machine size.
        nodes: u32,
    },
    /// Per-user fairness audit of one policy.
    Audit {
        /// SWF trace path.
        trace: String,
        /// Policy id.
        policy: String,
        /// Machine size.
        nodes: u32,
    },
    /// Print usage.
    Help,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// The usage text.
pub const USAGE: &str = "\
fairsched — parallel job scheduling fairness toolkit

USAGE:
  fairsched generate [--seed N] [--scale F] [--nodes N] --out FILE.swf
  fairsched simulate --trace FILE.swf --policy ID [--nodes N]
  fairsched compare  --trace FILE.swf [--policy ID]... [--nodes N]
  fairsched audit    --trace FILE.swf --policy ID [--nodes N]
  fairsched help

POLICY IDS:
  cplant24.nomax.all   cplant72.nomax.all   cplant24.nomax.fair
  cplant24.72max.all   cplant72.72max.fair  cons.nomax  cons.72max
  consdyn.nomax        consdyn.72max        easy.nomax  fcfs.nobackfill
";

/// Parses argv (without the program name).
pub fn parse(args: &[String]) -> Result<Command, UsageError> {
    let mut it = args.iter();
    let sub = it.next().map(String::as_str).unwrap_or("help");
    let rest: Vec<&String> = it.collect();

    let flag = |name: &str| -> Option<&str> {
        rest.iter()
            .position(|a| a.as_str() == name)
            .and_then(|i| rest.get(i + 1))
            .map(|s| s.as_str())
    };
    let flags_all = |name: &str| -> Vec<String> {
        rest.iter()
            .enumerate()
            .filter(|(_, a)| a.as_str() == name)
            .filter_map(|(i, _)| rest.get(i + 1))
            .map(|s| s.to_string())
            .collect()
    };
    let parse_u64 = |name: &str, default: u64| -> Result<u64, UsageError> {
        match flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| UsageError(format!("{name} needs an integer, got {v:?}"))),
        }
    };
    let parse_u32 = |name: &str, default: u32| -> Result<u32, UsageError> {
        match flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| UsageError(format!("{name} needs an integer, got {v:?}"))),
        }
    };
    let parse_f64 = |name: &str, default: f64| -> Result<f64, UsageError> {
        match flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| UsageError(format!("{name} needs a number, got {v:?}"))),
        }
    };
    let required = |name: &str| -> Result<String, UsageError> {
        flag(name).map(str::to_string).ok_or_else(|| UsageError(format!("missing required {name}")))
    };

    match sub {
        "generate" => Ok(Command::Generate {
            seed: parse_u64("--seed", 42)?,
            scale: {
                let s = parse_f64("--scale", 1.0)?;
                if !(s > 0.0 && s <= 1.0) {
                    return Err(UsageError(format!("--scale must be in (0, 1], got {s}")));
                }
                s
            },
            nodes: parse_u32("--nodes", DEFAULT_NODES)?,
            out: required("--out")?,
        }),
        "simulate" => Ok(Command::Simulate {
            trace: required("--trace")?,
            policy: required("--policy")?,
            nodes: parse_u32("--nodes", DEFAULT_NODES)?,
        }),
        "compare" => Ok(Command::Compare {
            trace: required("--trace")?,
            policies: flags_all("--policy"),
            nodes: parse_u32("--nodes", DEFAULT_NODES)?,
        }),
        "audit" => Ok(Command::Audit {
            trace: required("--trace")?,
            policy: required("--policy")?,
            nodes: parse_u32("--nodes", DEFAULT_NODES)?,
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(UsageError(format!("unknown subcommand {other:?}; try `fairsched help`"))),
    }
}

/// Executes a command, returning the text to print.
pub fn execute(cmd: Command) -> Result<String, Box<dyn std::error::Error>> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Generate { seed, scale, nodes, out } => {
            let trace = CplantModel::new(seed).with_nodes(nodes).with_scale(scale).generate();
            write_swf_file(
                &out,
                &trace,
                nodes,
                &format!("fairsched generate --seed {seed} --scale {scale} --nodes {nodes}"),
            )?;
            Ok(format!("wrote {} jobs to {out}\n", trace.len()))
        }
        Command::Simulate { trace, policy, nodes } => {
            let jobs = load_trace(&trace, nodes)?;
            let spec = lookup(&policy)?;
            let outcome = run_policy(&jobs, &spec, nodes);
            let m = outcome.metrics();
            let mut out = String::new();
            writeln!(out, "policy:            {}", outcome.policy)?;
            writeln!(out, "jobs:              {}", jobs.len())?;
            writeln!(out, "utilization:       {:.1}%", 100.0 * m.utilization)?;
            writeln!(out, "loss of capacity:  {:.1}%", 100.0 * m.loss_of_capacity)?;
            writeln!(out, "avg turnaround:    {}", format_duration(m.average_turnaround as u64))?;
            writeln!(out, "unfair jobs:       {:.2}%", 100.0 * m.percent_unfair)?;
            writeln!(out, "avg FST miss:      {}", format_duration(m.average_miss_time as u64))?;
            Ok(out)
        }
        Command::Compare { trace, policies, nodes } => {
            let jobs = load_trace(&trace, nodes)?;
            let specs: Vec<PolicySpec> = if policies.is_empty() {
                PolicySpec::paper_policies()
            } else {
                policies.iter().map(|id| lookup(id)).collect::<Result<_, _>>()?
            };
            let outcomes = run_policies(&jobs, &specs, nodes);
            let mut out = String::new();
            writeln!(
                out,
                "{:<22} {:>9} {:>12} {:>14} {:>8}",
                "policy", "unfair%", "avg miss(s)", "turnaround(s)", "LOC%"
            )?;
            for o in &outcomes {
                let m = o.metrics();
                writeln!(
                    out,
                    "{:<22} {:>8.2}% {:>12.0} {:>14.0} {:>7.2}%",
                    o.policy,
                    100.0 * m.percent_unfair,
                    m.average_miss_time,
                    m.average_turnaround,
                    100.0 * m.loss_of_capacity,
                )?;
            }
            Ok(out)
        }
        Command::Audit { trace, policy, nodes } => {
            let jobs = load_trace(&trace, nodes)?;
            let spec = lookup(&policy)?;
            let outcome = run_policy(&jobs, &spec, nodes);
            let users = per_user(&outcome.schedule, &outcome.fairness);
            let mut out = String::new();
            writeln!(out, "per-user fairness under {} ({} users):", outcome.policy, users.len())?;
            writeln!(
                out,
                "{:<8} {:>6} {:>14} {:>9} {:>13}",
                "user", "jobs", "proc-hours", "unfair%", "mean miss(s)"
            )?;
            for u in users.iter().take(15) {
                writeln!(
                    out,
                    "{:<8} {:>6} {:>14.0} {:>8.1}% {:>13.0}",
                    u.user.to_string(),
                    u.jobs,
                    u.proc_seconds / 3600.0,
                    100.0 * u.percent_unfair(),
                    u.mean_miss(),
                )?;
            }
            let (heavy, light) = heavy_vs_light_miss(&users, 0.1);
            writeln!(out, "top-10% users mean miss {heavy:.0}s; others {light:.0}s")?;
            Ok(out)
        }
    }
}

fn lookup(id: &str) -> Result<PolicySpec, UsageError> {
    PolicySpec::by_id(id)
        .ok_or_else(|| UsageError(format!("unknown policy {id:?}; try `fairsched help`")))
}

fn load_trace(
    path: &str,
    nodes: u32,
) -> Result<Vec<fairsched_workload::job::Job>, Box<dyn std::error::Error>> {
    let parsed = read_swf_file(path)?;
    if parsed.jobs.is_empty() {
        return Err(Box::new(UsageError(format!("{path} holds no usable jobs"))));
    }
    if let Some(too_wide) = parsed.jobs.iter().find(|j| j.nodes > nodes) {
        return Err(Box::new(UsageError(format!(
            "{} requests {} nodes but the machine has {nodes}; pass a larger --nodes",
            too_wide.id, too_wide.nodes
        ))));
    }
    Ok(parsed.jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_generate_with_defaults_and_overrides() {
        let cmd = parse(&args("generate --out /tmp/x.swf")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate { seed: 42, scale: 1.0, nodes: DEFAULT_NODES, out: "/tmp/x.swf".into() }
        );
        let cmd = parse(&args("generate --seed 7 --scale 0.1 --nodes 256 --out t.swf")).unwrap();
        assert_eq!(cmd, Command::Generate { seed: 7, scale: 0.1, nodes: 256, out: "t.swf".into() });
    }

    #[test]
    fn rejects_bad_flags_with_messages() {
        assert!(parse(&args("generate")).unwrap_err().0.contains("--out"));
        assert!(parse(&args("generate --scale 2.0 --out x")).unwrap_err().0.contains("--scale"));
        assert!(parse(&args("generate --seed abc --out x")).unwrap_err().0.contains("--seed"));
        assert!(parse(&args("frobnicate")).unwrap_err().0.contains("unknown subcommand"));
        assert!(parse(&args("simulate --trace t.swf")).unwrap_err().0.contains("--policy"));
    }

    #[test]
    fn compare_collects_repeated_policy_flags() {
        let cmd = parse(&args("compare --trace t.swf --policy cons.nomax --policy easy.nomax"))
            .unwrap();
        match cmd {
            Command::Compare { policies, .. } => {
                assert_eq!(policies, vec!["cons.nomax", "easy.nomax"]);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn help_paths() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
        let text = execute(Command::Help).unwrap();
        assert!(text.contains("USAGE"));
        assert!(text.contains("cons.72max"));
    }

    #[test]
    fn end_to_end_generate_simulate_compare_audit() {
        let dir = std::env::temp_dir().join("fairsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.swf");
        let out = execute(Command::Generate {
            seed: 3,
            scale: 0.02,
            nodes: 1024,
            out: path.to_str().unwrap().into(),
        })
        .unwrap();
        assert!(out.contains("wrote"));

        let sim = execute(Command::Simulate {
            trace: path.to_str().unwrap().into(),
            policy: "cplant24.nomax.all".into(),
            nodes: 1024,
        })
        .unwrap();
        assert!(sim.contains("utilization"));
        assert!(sim.contains("avg FST miss"));

        let cmp = execute(Command::Compare {
            trace: path.to_str().unwrap().into(),
            policies: vec!["cons.nomax".into(), "easy.nomax".into()],
            nodes: 1024,
        })
        .unwrap();
        assert!(cmp.contains("cons.nomax"));
        assert!(cmp.contains("easy.nomax"));

        let audit = execute(Command::Audit {
            trace: path.to_str().unwrap().into(),
            policy: "cons.72max".into(),
            nodes: 1024,
        })
        .unwrap();
        assert!(audit.contains("per-user fairness"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_policy_and_missing_file_error_cleanly() {
        let err = execute(Command::Simulate {
            trace: "/nonexistent.swf".into(),
            policy: "cplant24.nomax.all".into(),
            nodes: 1024,
        })
        .unwrap_err();
        assert!(err.to_string().contains("nonexistent") || err.to_string().contains("No such file"));

        assert!(lookup("not-a-policy").is_err());
    }

    #[test]
    fn too_wide_trace_is_a_usage_error_not_a_panic() {
        let dir = std::env::temp_dir().join("fairsched-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wide.swf");
        let jobs = vec![fairsched_workload::job::Job::new(1, 1, 1, 0, 512, 100, 100)];
        fairsched_workload::swf::write_swf_file(&path, &jobs, 512, "wide").unwrap();
        let err = execute(Command::Simulate {
            trace: path.to_str().unwrap().into(),
            policy: "cons.nomax".into(),
            nodes: 64,
        })
        .unwrap_err();
        assert!(err.to_string().contains("--nodes"));
        std::fs::remove_file(&path).unwrap();
    }
}
