//! # fairsched-cli
//!
//! The command-line face of the workspace. Eleven subcommands:
//!
//! ```text
//! fairsched generate --seed 42 --scale 0.1 --nodes 1024 --out trace.swf
//! fairsched simulate --trace trace.swf --policy cplant24.nomax.all [--trace-out d.jsonl]
//! fairsched compare  --trace trace.swf [--policy A --policy B …]
//! fairsched audit    --trace trace.swf --policy cons.72max
//! fairsched profile  --trace trace.swf --policy cons.nomax
//! fairsched explain  --trace trace.swf --policy cons.nomax [--job 17]
//! fairsched sweep    --journal s.jsonl --seeds 1,2,3 [--grid A,B] [--resume]
//! fairsched serve    [--port N] [--policy ID] [--speedup X | --manual]
//! fairsched submit   --addr HOST:PORT --id N --user N --submit T --nodes N --runtime T
//! fairsched status   --addr HOST:PORT
//! fairsched watch    --addr HOST:PORT [--interval-ms N] [--count N]
//! ```
//!
//! All logic lives in this library (parsing, dispatch, rendering) so it is
//! unit-testable; `main.rs` is a two-liner. Argument parsing is hand-rolled:
//! a few flags per command do not justify a dependency. Each subcommand
//! rejects flags it does not understand — `audit --mtbf 60` is a usage
//! error, not a silently fault-free run. Diagnostics (skipped SWF records)
//! go through the `fairsched_obs::log` facade, silenced by the global
//! `--quiet` flag (see [`strip_quiet`]) or `FAIRSCHED_QUIET=1`.

use fairsched_core::policy::PolicySpec;
use fairsched_core::runner::{try_run_policy, try_run_policy_traced, RunOptions};
use fairsched_core::sweep::try_run_policies;
use fairsched_core::{run_sweep, FaultPoint, SweepConfig, SweepPlan};
use fairsched_metrics::explain::{explain_wait, worst_miss};
use fairsched_metrics::fairness::peruser::heavy_vs_light_miss;
use fairsched_obs::registry::{parse_exposition, quantile_from_buckets};
use fairsched_obs::{log, DecisionTracer};
use fairsched_served::clock::ClockMode;
use fairsched_served::session::SessionConfig;
use fairsched_served::{Client, Daemon, SubmitRequest};
use fairsched_sim::{FaultConfig, ResiliencePolicy};
use fairsched_workload::job::JobId;
use fairsched_workload::swf::{read_swf_file, write_swf_file};
use fairsched_workload::synthetic::DEFAULT_NODES;
use fairsched_workload::time::format_duration;
use fairsched_workload::CplantModel;
use std::fmt::Write as _;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic trace and write it as SWF.
    Generate {
        /// Generator seed.
        seed: u64,
        /// Fraction of the Table-1 mix.
        scale: f64,
        /// Machine size.
        nodes: u32,
        /// Output path.
        out: String,
    },
    /// Simulate one policy over a trace and print its metrics.
    Simulate {
        /// SWF trace path.
        trace: String,
        /// Policy id (see `PolicySpec::by_id`).
        policy: String,
        /// Machine size.
        nodes: u32,
        /// Fault injection (disabled unless --mtbf/--crash-rate given).
        faults: FaultConfig,
        /// Write the run's decision trace as JSONL to this path.
        trace_out: Option<String>,
    },
    /// Run several policies (default: the paper's nine) side by side.
    Compare {
        /// SWF trace path.
        trace: String,
        /// Policy ids; empty = the paper's nine.
        policies: Vec<String>,
        /// Machine size.
        nodes: u32,
        /// Fault injection (disabled unless --mtbf/--crash-rate given).
        faults: FaultConfig,
    },
    /// Per-user fairness audit of one policy.
    Audit {
        /// SWF trace path.
        trace: String,
        /// Policy id.
        policy: String,
        /// Machine size.
        nodes: u32,
    },
    /// Profile one policy run: runtime counters and pass timings.
    Profile {
        /// SWF trace path.
        trace: String,
        /// Policy id.
        policy: String,
        /// Machine size.
        nodes: u32,
        /// Fault injection (disabled unless --mtbf/--crash-rate given).
        faults: FaultConfig,
    },
    /// Explain one job's wait from a traced run of the policy.
    Explain {
        /// SWF trace path.
        trace: String,
        /// Policy id.
        policy: String,
        /// Machine size.
        nodes: u32,
        /// Fault injection (disabled unless --mtbf/--crash-rate given).
        faults: FaultConfig,
        /// Job to explain; defaults to the worst fair-start miss.
        job: Option<u32>,
    },
    /// Crash-safe design-space sweep with a durable journal.
    Sweep {
        /// Journal path (created fresh, or appended to under `resume`).
        journal: String,
        /// Policy ids forming the grid's policy axis; empty = the paper's
        /// nine.
        policies: Vec<String>,
        /// Workload-generator seeds (one shared trace per seed).
        seeds: Vec<u64>,
        /// Workload scale factor.
        scale: f64,
        /// Machine size.
        nodes: u32,
        /// Per-cell wall-clock budget in seconds; `None` disables the
        /// watchdog.
        timeout_per_cell: Option<f64>,
        /// Extra attempts after a timeout.
        max_retries: u32,
        /// Replay the journal and skip completed cells.
        resume: bool,
        /// Worker threads (`None`: available parallelism).
        threads: Option<usize>,
        /// Fault point crossed with every (seed, policy) pair, besides the
        /// implicit clean point (disabled unless fault flags given).
        faults: FaultConfig,
    },
    /// Run `fairschedd`: the online scheduling daemon, in the foreground
    /// until `POST /v1/shutdown` (or `fairsched submit/status` clients
    /// drive it).
    Serve {
        /// TCP port on 127.0.0.1 (0 = OS-assigned).
        port: u16,
        /// Write the resolved port here, for scripts using port 0.
        port_file: Option<String>,
        /// Policy id the daemon schedules under.
        policy: String,
        /// Machine size.
        nodes: u32,
        /// How simulated time advances.
        clock: ClockMode,
        /// Whether to emit trace effects (needed for `/v1/trace` and live
        /// explain).
        traced: bool,
    },
    /// Submit one job to a running daemon.
    Submit {
        /// Daemon address, e.g. `127.0.0.1:7070`.
        addr: std::net::SocketAddr,
        /// The job to submit.
        request: SubmitRequest,
    },
    /// Query a running daemon's live status.
    Status {
        /// Daemon address.
        addr: std::net::SocketAddr,
    },
    /// Poll a running daemon's live fairness gauges and request
    /// latencies, rendering one frame per poll until the session seals.
    Watch {
        /// Daemon address.
        addr: std::net::SocketAddr,
        /// Milliseconds between polls.
        interval_ms: u64,
        /// Stop after this many frames (0 = watch until sealed).
        count: u64,
    },
    /// Print usage.
    Help,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// The usage text.
pub const USAGE: &str = "\
fairsched — parallel job scheduling fairness toolkit

USAGE:
  fairsched generate [--seed N] [--scale F] [--nodes N] --out FILE.swf
  fairsched simulate --trace FILE.swf --policy ID [--nodes N]
                     [--trace-out FILE.jsonl] [FAULTS]
  fairsched compare  --trace FILE.swf [--policy ID]... [--nodes N] [FAULTS]
  fairsched audit    --trace FILE.swf --policy ID [--nodes N]
  fairsched profile  --trace FILE.swf --policy ID [--nodes N] [FAULTS]
  fairsched explain  --trace FILE.swf --policy ID [--job N] [--nodes N] [FAULTS]
  fairsched sweep    --journal FILE.jsonl [--grid ID,ID,...] [--seeds N,N,...]
                     [--scale F] [--nodes N] [--timeout-per-cell SECONDS]
                     [--max-retries N] [--threads N] [--resume] [FAULTS]
  fairsched serve    [--port N] [--port-file FILE] [--policy ID] [--nodes N]
                     [--speedup X | --manual] [--no-trace]
  fairsched submit   --addr HOST:PORT --id N --user N --submit T --nodes N
                     --runtime T [--estimate T] [--group N]
  fairsched status   --addr HOST:PORT
  fairsched watch    --addr HOST:PORT [--interval-ms N] [--count N]
  fairsched help

SERVE (the fairschedd online scheduling daemon):
  Accepts job submissions over HTTP on 127.0.0.1 and schedules them with
  the same deterministic core as batch simulation. --speedup X maps one
  wall second to X simulated seconds (default 1.0); --manual advances
  only on POST /v1/advance. Stream decisions from GET /v1/trace (JSONL),
  explain a queued-then-started job live via GET /v1/explain/{id}, and
  finish the run with POST /v1/seal. Stop with POST /v1/shutdown.
  GET /metrics exposes Prometheus text; GET /v1/fairness a live JSON
  fairness snapshot. `fairsched watch` polls both and renders a frame
  every --interval-ms (default 1000), stopping after --count frames
  (default 0: watch until the session seals).

Fault flags apply to simulate, compare, profile, explain, and sweep;
other subcommands reject them. `--quiet` anywhere (or FAIRSCHED_QUIET=1)
silences diagnostics.

SWEEP (crash-safe design-space grids):
  Runs seeds × policies × fault points, journaling each cell as a
  checksummed JSONL row. A killed sweep resumes with --resume: completed
  cells are replayed from the journal, never re-simulated. With fault
  flags the grid crosses a clean point and the configured fault point.

FAULTS (deterministic fault injection; off by default):
  --mtbf SECONDS          per-node mean time between failures
  --crash-rate F          probability in [0, 1) that a submission crashes
  --resilience POLICY     requeue (rerun from scratch) or resume (keep work)
  --fault-seed N          seed for the fault timeline (default 0)

POLICY IDS:
  cplant24.nomax.all   cplant72.nomax.all   cplant24.nomax.fair
  cplant24.72max.all   cplant72.72max.fair  cons.nomax  cons.72max
  consdyn.nomax        consdyn.72max        easy.nomax  fcfs.nobackfill
  fsp.nomax    las.nomax    hfsp.nomax      (size-based family; also .72max)
  rdepth<n>.nomax rdepth<n>.72max          (conservative truncated to n
                                            reservations, e.g. rdepth4.nomax)
";

/// Removes every `--quiet` from `args`, enabling quiet logging when at
/// least one was present. The flag is global, so it is handled before
/// subcommand parsing; [`parse`] itself never sees it.
pub fn strip_quiet(args: &mut Vec<String>) {
    if args.iter().any(|a| a == "--quiet") {
        log::set_quiet(true);
        args.retain(|a| a != "--quiet");
    }
}

/// Parses argv (without the program name).
pub fn parse(args: &[String]) -> Result<Command, UsageError> {
    let mut it = args.iter();
    let sub = it.next().map(String::as_str).unwrap_or("help");
    let rest: Vec<&String> = it.collect();

    // A flag that appears without a following value (e.g. `--mtbf` as the
    // last argument) is an error, not an absent flag — silently ignoring it
    // would run a different simulation than the user asked for.
    let flag = |name: &str| -> Result<Option<&str>, UsageError> {
        match rest.iter().position(|a| a.as_str() == name) {
            None => Ok(None),
            Some(i) => match rest.get(i + 1) {
                Some(v) => Ok(Some(v.as_str())),
                None => Err(UsageError(format!("{name} needs a value"))),
            },
        }
    };
    let flags_all = |name: &str| -> Result<Vec<String>, UsageError> {
        let mut out = Vec::new();
        for (i, a) in rest.iter().enumerate() {
            if a.as_str() == name {
                match rest.get(i + 1) {
                    Some(v) => out.push(v.to_string()),
                    None => return Err(UsageError(format!("{name} needs a value"))),
                }
            }
        }
        Ok(out)
    };
    let parse_u64 = |name: &str, default: u64| -> Result<u64, UsageError> {
        match flag(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| UsageError(format!("{name} needs an integer, got {v:?}"))),
        }
    };
    let parse_u32 = |name: &str, default: u32| -> Result<u32, UsageError> {
        match flag(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| UsageError(format!("{name} needs an integer, got {v:?}"))),
        }
    };
    let parse_f64 = |name: &str, default: f64| -> Result<f64, UsageError> {
        match flag(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| UsageError(format!("{name} needs a number, got {v:?}"))),
        }
    };
    let required = |name: &str| -> Result<String, UsageError> {
        flag(name)?
            .map(str::to_string)
            .ok_or_else(|| UsageError(format!("missing required {name}")))
    };
    // Every subcommand whitelists its flags: a flag aimed at a different
    // subcommand (e.g. `audit --mtbf 60`) is a usage error, never silently
    // ignored — ignoring it would run a different simulation than asked.
    // Boolean flags (e.g. `sweep --resume`) take no value, so the scanner
    // must not swallow the next token as one.
    let check_flags_with_bools = |allowed: &[&str], bools: &[&str]| -> Result<(), UsageError> {
        let mut i = 0;
        while i < rest.len() {
            let a = rest[i].as_str();
            if a.starts_with("--") {
                if bools.contains(&a) {
                    i += 1;
                } else if allowed.contains(&a) {
                    i += 2; // skip the flag's value
                } else {
                    return Err(UsageError(format!(
                        "{sub} does not take {a}; try `fairsched help`"
                    )));
                }
            } else {
                i += 1;
            }
        }
        Ok(())
    };
    let check_flags = |allowed: &[&str]| check_flags_with_bools(allowed, &[]);
    const FAULT_FLAGS: [&str; 4] = ["--mtbf", "--crash-rate", "--resilience", "--fault-seed"];
    fn with_faults(flags: &[&'static str]) -> Vec<&'static str> {
        flags.iter().chain(FAULT_FLAGS.iter()).copied().collect()
    }
    let parse_faults = || -> Result<FaultConfig, UsageError> {
        let node_mtbf = match flag("--mtbf")? {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| UsageError(format!("--mtbf needs an integer, got {v:?}")))?,
            ),
        };
        let resilience = match flag("--resilience")? {
            None | Some("requeue") => ResiliencePolicy::RequeueFromScratch,
            Some("resume") => ResiliencePolicy::ChunkResume,
            Some(other) => {
                return Err(UsageError(format!(
                    "--resilience must be `requeue` or `resume`, got {other:?}"
                )))
            }
        };
        let cfg = FaultConfig {
            node_mtbf,
            job_crash_rate: parse_f64("--crash-rate", 0.0)?,
            resilience,
            seed: parse_u64("--fault-seed", 0)?,
            ..FaultConfig::default()
        };
        cfg.validate().map_err(UsageError)?;
        Ok(cfg)
    };

    match sub {
        "generate" => {
            check_flags(&["--seed", "--scale", "--nodes", "--out"])?;
            Ok(Command::Generate {
                seed: parse_u64("--seed", 42)?,
                scale: {
                    let s = parse_f64("--scale", 1.0)?;
                    if !(s > 0.0 && s <= 1.0) {
                        return Err(UsageError(format!("--scale must be in (0, 1], got {s}")));
                    }
                    s
                },
                nodes: parse_u32("--nodes", DEFAULT_NODES)?,
                out: required("--out")?,
            })
        }
        "simulate" => {
            check_flags(&with_faults(&[
                "--trace",
                "--policy",
                "--nodes",
                "--trace-out",
            ]))?;
            Ok(Command::Simulate {
                trace: required("--trace")?,
                policy: required("--policy")?,
                nodes: parse_u32("--nodes", DEFAULT_NODES)?,
                faults: parse_faults()?,
                trace_out: flag("--trace-out")?.map(str::to_string),
            })
        }
        "compare" => {
            check_flags(&with_faults(&["--trace", "--policy", "--nodes"]))?;
            Ok(Command::Compare {
                trace: required("--trace")?,
                policies: flags_all("--policy")?,
                nodes: parse_u32("--nodes", DEFAULT_NODES)?,
                faults: parse_faults()?,
            })
        }
        "audit" => {
            check_flags(&["--trace", "--policy", "--nodes"])?;
            Ok(Command::Audit {
                trace: required("--trace")?,
                policy: required("--policy")?,
                nodes: parse_u32("--nodes", DEFAULT_NODES)?,
            })
        }
        "profile" => {
            check_flags(&with_faults(&["--trace", "--policy", "--nodes"]))?;
            Ok(Command::Profile {
                trace: required("--trace")?,
                policy: required("--policy")?,
                nodes: parse_u32("--nodes", DEFAULT_NODES)?,
                faults: parse_faults()?,
            })
        }
        "explain" => {
            check_flags(&with_faults(&["--trace", "--policy", "--nodes", "--job"]))?;
            Ok(Command::Explain {
                trace: required("--trace")?,
                policy: required("--policy")?,
                nodes: parse_u32("--nodes", DEFAULT_NODES)?,
                faults: parse_faults()?,
                job: match flag("--job")? {
                    None => None,
                    Some(v) => Some(v.parse().map_err(|_| {
                        UsageError(format!("--job needs an integer id, got {v:?}"))
                    })?),
                },
            })
        }
        "sweep" => {
            check_flags_with_bools(
                &with_faults(&[
                    "--journal",
                    "--grid",
                    "--seeds",
                    "--scale",
                    "--nodes",
                    "--timeout-per-cell",
                    "--max-retries",
                    "--threads",
                ]),
                &["--resume"],
            )?;
            let policies = match flag("--grid")? {
                None | Some("paper") => Vec::new(),
                Some(list) => list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect(),
            };
            let seeds = match flag("--seeds")? {
                None => vec![42],
                Some(list) => list
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.parse().map_err(|_| {
                            UsageError(format!("--seeds needs comma-separated integers, got {s:?}"))
                        })
                    })
                    .collect::<Result<Vec<u64>, UsageError>>()?,
            };
            if seeds.is_empty() {
                return Err(UsageError("--seeds needs at least one seed".into()));
            }
            let timeout_per_cell = match flag("--timeout-per-cell")? {
                None => None,
                Some(v) => {
                    let secs: f64 = v.parse().map_err(|_| {
                        UsageError(format!("--timeout-per-cell needs seconds, got {v:?}"))
                    })?;
                    if !(secs > 0.0 && secs.is_finite()) {
                        return Err(UsageError(format!(
                            "--timeout-per-cell must be positive, got {secs}"
                        )));
                    }
                    Some(secs)
                }
            };
            let threads =
                match flag("--threads")? {
                    None => None,
                    Some(v) => Some(v.parse::<usize>().map_err(|_| {
                        UsageError(format!("--threads needs an integer, got {v:?}"))
                    })?),
                };
            Ok(Command::Sweep {
                journal: required("--journal")?,
                policies,
                seeds,
                scale: {
                    let s = parse_f64("--scale", 0.02)?;
                    if !(s > 0.0 && s <= 1.0) {
                        return Err(UsageError(format!("--scale must be in (0, 1], got {s}")));
                    }
                    s
                },
                nodes: parse_u32("--nodes", DEFAULT_NODES)?,
                timeout_per_cell,
                max_retries: parse_u64("--max-retries", 1)? as u32,
                resume: rest.iter().any(|a| a.as_str() == "--resume"),
                threads,
                faults: parse_faults()?,
            })
        }
        "serve" => {
            check_flags_with_bools(
                &["--port", "--port-file", "--policy", "--nodes", "--speedup"],
                &["--manual", "--no-trace"],
            )?;
            let manual = rest.iter().any(|a| a.as_str() == "--manual");
            let speedup = parse_f64("--speedup", 1.0)?;
            if !(speedup.is_finite() && speedup > 0.0) {
                return Err(UsageError(format!(
                    "--speedup must be positive, got {speedup}"
                )));
            }
            if manual && flag("--speedup")?.is_some() {
                return Err(UsageError(
                    "--manual and --speedup are mutually exclusive".into(),
                ));
            }
            Ok(Command::Serve {
                port: parse_u64("--port", 0)?
                    .try_into()
                    .map_err(|_| UsageError("--port must fit a 16-bit port number".into()))?,
                port_file: flag("--port-file")?.map(str::to_string),
                policy: flag("--policy")?.unwrap_or("easy.nomax").to_string(),
                nodes: parse_u32("--nodes", DEFAULT_NODES)?,
                clock: if manual {
                    ClockMode::Manual
                } else {
                    ClockMode::Realtime { speedup }
                },
                traced: !rest.iter().any(|a| a.as_str() == "--no-trace"),
            })
        }
        "submit" => {
            check_flags(&[
                "--addr",
                "--id",
                "--user",
                "--group",
                "--submit",
                "--nodes",
                "--runtime",
                "--estimate",
            ])?;
            let runtime = parse_u64("--runtime", 0)?;
            if flag("--runtime")?.is_none() {
                return Err(UsageError("missing required --runtime".into()));
            }
            Ok(Command::Submit {
                addr: parse_addr(&required("--addr")?)?,
                request: SubmitRequest {
                    id: match flag("--id")? {
                        Some(v) => v
                            .parse()
                            .map_err(|_| UsageError(format!("--id needs an integer, got {v:?}")))?,
                        None => return Err(UsageError("missing required --id".into())),
                    },
                    user: parse_u32("--user", 1)?,
                    group: parse_u32("--group", 1)?,
                    submit: parse_u64("--submit", 0)?,
                    nodes: match flag("--nodes")? {
                        Some(v) => v.parse().map_err(|_| {
                            UsageError(format!("--nodes needs an integer, got {v:?}"))
                        })?,
                        None => return Err(UsageError("missing required --nodes".into())),
                    },
                    runtime,
                    estimate: parse_u64("--estimate", runtime)?,
                },
            })
        }
        "status" => {
            check_flags(&["--addr"])?;
            Ok(Command::Status {
                addr: parse_addr(&required("--addr")?)?,
            })
        }
        "watch" => {
            check_flags(&["--addr", "--interval-ms", "--count"])?;
            let interval_ms = parse_u64("--interval-ms", 1000)?;
            if interval_ms == 0 {
                return Err(UsageError("--interval-ms must be positive".into()));
            }
            Ok(Command::Watch {
                addr: parse_addr(&required("--addr")?)?,
                interval_ms,
                count: parse_u64("--count", 0)?,
            })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(UsageError(format!(
            "unknown subcommand {other:?}; try `fairsched help`"
        ))),
    }
}

/// Executes a command, returning the text to print.
pub fn execute(cmd: Command) -> Result<String, Box<dyn std::error::Error>> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Generate {
            seed,
            scale,
            nodes,
            out,
        } => {
            let trace = CplantModel::new(seed)
                .with_nodes(nodes)
                .with_scale(scale)
                .generate();
            write_swf_file(
                &out,
                &trace,
                nodes,
                &format!("fairsched generate --seed {seed} --scale {scale} --nodes {nodes}"),
            )?;
            Ok(format!("wrote {} jobs to {out}\n", trace.len()))
        }
        Command::Simulate {
            trace,
            policy,
            nodes,
            faults,
            trace_out,
        } => {
            let (jobs, mut out) = load_trace(&trace, nodes)?;
            let spec = lookup(&policy)?;
            let outcome = match &trace_out {
                None => {
                    // The panic fence turns simulator aborts (e.g. a
                    // diverging fault configuration) into a clean error
                    // line, not a backtrace.
                    try_run_policies(&jobs, std::slice::from_ref(&spec), nodes, &faults)
                        .pop()
                        .expect("one spec in, one result out")
                        .map_err(Box::new)?
                }
                Some(path) => {
                    let mut tracer = DecisionTracer::unbounded();
                    let opts = RunOptions::with_faults(faults.clone());
                    let run = try_run_policy_traced(&jobs, &spec, nodes, &opts, Some(&mut tracer))?;
                    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
                    tracer.write_jsonl(&mut file)?;
                    use std::io::Write as _;
                    file.flush()?;
                    writeln!(out, "wrote {} trace records to {path}", tracer.len())?;
                    run.outcome
                }
            };
            let m = outcome.metrics();
            writeln!(out, "policy:            {}", outcome.policy)?;
            writeln!(out, "jobs:              {}", jobs.len())?;
            writeln!(out, "utilization:       {:.1}%", 100.0 * m.utilization)?;
            writeln!(out, "loss of capacity:  {:.1}%", 100.0 * m.loss_of_capacity)?;
            writeln!(
                out,
                "avg turnaround:    {}",
                format_duration(m.average_turnaround as u64)
            )?;
            writeln!(out, "unfair jobs:       {:.2}%", 100.0 * m.percent_unfair)?;
            writeln!(
                out,
                "avg FST miss:      {}",
                format_duration(m.average_miss_time as u64)
            )?;
            if faults.enabled() {
                let split = outcome.resilience();
                writeln!(out, "goodput:           {:.1}%", 100.0 * split.goodput)?;
                writeln!(
                    out,
                    "interrupted:       {} of {} submissions",
                    split.interrupted_count(),
                    outcome.fairness.entries.len(),
                )?;
                writeln!(
                    out,
                    "down capacity:     {:.0} node-hours",
                    outcome.schedule.down_nodeseconds / 3600.0
                )?;
                writeln!(
                    out,
                    "miss (interrupted): {}   (clean): {}",
                    format_duration(split.interrupted.average_miss_time() as u64),
                    format_duration(split.clean.average_miss_time() as u64),
                )?;
            }
            Ok(out)
        }
        Command::Compare {
            trace,
            policies,
            nodes,
            faults,
        } => {
            let (jobs, mut out) = load_trace(&trace, nodes)?;
            let specs: Vec<PolicySpec> = if policies.is_empty() {
                PolicySpec::paper_policies()
            } else {
                policies
                    .iter()
                    .map(|id| lookup(id))
                    .collect::<Result<_, _>>()?
            };
            let results = try_run_policies(&jobs, &specs, nodes, &faults);
            writeln!(
                out,
                "{:<22} {:>9} {:>12} {:>14} {:>8}",
                "policy", "unfair%", "avg miss(s)", "turnaround(s)", "LOC%"
            )?;
            let mut failures = Vec::new();
            for result in &results {
                match result {
                    Ok(o) => {
                        let m = o.metrics();
                        writeln!(
                            out,
                            "{:<22} {:>8.2}% {:>12.0} {:>14.0} {:>7.2}%",
                            o.policy,
                            100.0 * m.percent_unfair,
                            m.average_miss_time,
                            m.average_turnaround,
                            100.0 * m.loss_of_capacity,
                        )?;
                    }
                    Err(e) => {
                        writeln!(out, "{:<22} FAILED", e.policy)?;
                        failures.push(e);
                    }
                }
            }
            for e in failures {
                writeln!(out, "warning: {e}")?;
            }
            Ok(out)
        }
        Command::Audit {
            trace,
            policy,
            nodes,
        } => {
            let (jobs, mut out) = load_trace(&trace, nodes)?;
            let spec = lookup(&policy)?;
            let opts = RunOptions {
                per_user: true,
                ..Default::default()
            };
            let run = try_run_policy(&jobs, &spec, nodes, &opts)?;
            let users = run.per_user.expect("requested in RunOptions");
            writeln!(
                out,
                "per-user fairness under {} ({} users):",
                run.outcome.policy,
                users.len()
            )?;
            writeln!(
                out,
                "{:<8} {:>6} {:>14} {:>9} {:>13}",
                "user", "jobs", "proc-hours", "unfair%", "mean miss(s)"
            )?;
            for u in users.iter().take(15) {
                writeln!(
                    out,
                    "{:<8} {:>6} {:>14.0} {:>8.1}% {:>13.0}",
                    u.user.to_string(),
                    u.jobs,
                    u.proc_seconds / 3600.0,
                    100.0 * u.percent_unfair(),
                    u.mean_miss(),
                )?;
            }
            let (heavy, light) = heavy_vs_light_miss(&users, 0.1);
            writeln!(
                out,
                "top-10% users mean miss {heavy:.0}s; others {light:.0}s"
            )?;
            Ok(out)
        }
        Command::Profile {
            trace,
            policy,
            nodes,
            faults,
        } => {
            let (jobs, mut out) = load_trace(&trace, nodes)?;
            let spec = lookup(&policy)?;
            let opts = RunOptions {
                faults,
                profile: true,
                ..Default::default()
            };
            let run = try_run_policy(&jobs, &spec, nodes, &opts)?;
            let profile = run.profile.expect("requested in RunOptions");
            writeln!(
                out,
                "profile of {} over {} jobs on {nodes} nodes:",
                run.outcome.policy,
                jobs.len()
            )?;
            writeln!(out, "{profile}")?;
            Ok(out)
        }
        Command::Explain {
            trace,
            policy,
            nodes,
            faults,
            job,
        } => {
            let (jobs, mut out) = load_trace(&trace, nodes)?;
            let spec = lookup(&policy)?;
            let mut tracer = DecisionTracer::unbounded();
            let opts = RunOptions::with_faults(faults);
            let run = try_run_policy_traced(&jobs, &spec, nodes, &opts, Some(&mut tracer))?;
            let records = tracer.into_records();
            let fairness = &run.outcome.fairness;
            let target = match job {
                Some(id) => JobId(id),
                None => worst_miss(fairness).ok_or_else(|| {
                    UsageError("the trace produced no scored submissions to explain".into())
                })?,
            };
            let breakdown =
                explain_wait(&records, &run.outcome.schedule, target).ok_or_else(|| {
                    UsageError(format!(
                        "{target} is not in the schedule; pass a submission id from the trace"
                    ))
                })?;
            writeln!(out, "under {}:", run.outcome.policy)?;
            if let Some(e) = fairness.entries.iter().find(|e| e.id == target) {
                if e.unfair() {
                    writeln!(
                        out,
                        "{} was treated unfairly: fair start t={}, actual t={} — missed by {}s",
                        target,
                        e.fst,
                        e.start,
                        e.miss()
                    )?;
                } else {
                    writeln!(
                        out,
                        "{} met its fair start (fair t={}, actual t={})",
                        target, e.fst, e.start
                    )?;
                }
            }
            write!(out, "{breakdown}")?;
            Ok(out)
        }
        Command::Sweep {
            journal,
            policies,
            seeds,
            scale,
            nodes,
            timeout_per_cell,
            max_retries,
            resume,
            threads,
            faults,
        } => {
            let specs: Vec<PolicySpec> = if policies.is_empty() {
                PolicySpec::paper_policies()
            } else {
                policies
                    .iter()
                    .map(|id| lookup(id))
                    .collect::<Result<_, _>>()?
            };
            // The grid always carries the clean point; fault flags add a
            // second fault axis entry so each (seed, policy) pair is
            // measured both ways.
            let mut fault_points = vec![FaultPoint::clean()];
            if faults.enabled() {
                let mut parts = Vec::new();
                if let Some(m) = faults.node_mtbf {
                    parts.push(format!("mtbf{m}"));
                }
                if faults.job_crash_rate > 0.0 {
                    parts.push(format!("crash{}", faults.job_crash_rate));
                }
                fault_points.push(FaultPoint {
                    label: parts.join("+"),
                    config: faults,
                });
            }
            let cfg = SweepConfig {
                plan: SweepPlan {
                    seeds,
                    policies: specs,
                    faults: fault_points,
                    scale,
                    nodes,
                    exact_estimates: false,
                },
                journal: std::path::PathBuf::from(&journal),
                timeout_per_cell: timeout_per_cell.map(std::time::Duration::from_secs_f64),
                max_retries,
                resume,
                threads,
            };
            let summary = run_sweep(&cfg)?;
            let mut out = String::new();
            writeln!(
                out,
                "{:<5} {:<22} {:>10} {:<12} {:>9} {:>8} {:>8}",
                "cell", "policy", "seed", "fault", "status", "attempts", "unfair%"
            )?;
            for r in &summary.rows {
                let unfair = match &r.metrics {
                    Some(m) => format!("{:>7.2}%", 100.0 * m.percent_unfair),
                    None => "       -".to_string(),
                };
                writeln!(
                    out,
                    "{:<5} {:<22} {:>10} {:<12} {:>9} {:>8} {unfair}",
                    r.cell,
                    r.policy,
                    r.workload_seed,
                    r.fault,
                    r.status.as_str(),
                    r.attempts,
                )?;
            }
            writeln!(out, "{summary}")?;
            writeln!(out, "journal: {journal}")?;
            Ok(out)
        }
        Command::Serve {
            port,
            port_file,
            policy,
            nodes,
            clock,
            traced,
        } => {
            let mut daemon = Daemon::start(
                &format!("127.0.0.1:{port}"),
                SessionConfig {
                    policy,
                    nodes,
                    clock,
                    traced,
                    id_floor: 0,
                    ..SessionConfig::default()
                },
            )?;
            let addr = daemon.addr();
            eprintln!("fairschedd listening on {addr}");
            if let Some(path) = &port_file {
                std::fs::write(path, format!("{}\n", addr.port()))?;
            }
            // Realtime clocks need a heartbeat: events only fire when the
            // daemon grants time, so tick until shutdown (or seal).
            if let ClockMode::Realtime { .. } = clock {
                let session = std::sync::Arc::clone(daemon.session());
                std::thread::spawn(move || loop {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    if session.tick().is_err() {
                        break;
                    }
                });
            }
            while !daemon.stopped() {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            let status = daemon.session().status();
            daemon.shutdown();
            Ok(format!(
                "fairschedd stopped: {} submissions accepted, {} completed, \
                 final simulated time t={}\n",
                status.accepted, status.completed, status.now
            ))
        }
        Command::Submit { addr, request } => {
            let ack = Client::new(addr).submit(&request)?;
            Ok(format!(
                "accepted job {} (arrives in the queue at t={})\n",
                ack.id, ack.arrival
            ))
        }
        Command::Status { addr } => {
            let s = Client::new(addr).status()?;
            let mut out = String::new();
            writeln!(out, "fairschedd at {addr}:")?;
            writeln!(out, "policy:       {}", s.policy)?;
            writeln!(
                out,
                "nodes:        {} ({} free, {} down)",
                s.nodes, s.free, s.down
            )?;
            writeln!(out, "simulated t:  {} (granted {})", s.now, s.granted)?;
            writeln!(out, "queued:       {}", s.queued)?;
            writeln!(out, "running:      {}", s.running)?;
            writeln!(out, "accepted:     {}", s.accepted)?;
            writeln!(out, "completed:    {}", s.completed)?;
            match s.next_event {
                Some(t) => writeln!(out, "next event:   t={t}")?,
                None => writeln!(out, "next event:   none")?,
            }
            writeln!(out, "sealed:       {}", s.sealed)?;
            Ok(out)
        }
        Command::Watch {
            addr,
            interval_ms,
            count,
        } => {
            let client = Client::new(addr);
            let mut frames = 0u64;
            let sealed = loop {
                let status = client.status()?;
                let fairness = client.fairness()?;
                let metrics = client.metrics_text()?;
                let frame = render_watch_frame(&status, &fairness, &metrics);
                {
                    use std::io::Write as _;
                    let mut out = std::io::stdout().lock();
                    out.write_all(frame.as_bytes())?;
                    out.flush()?;
                }
                frames += 1;
                if status.sealed || (count > 0 && frames >= count) {
                    break status.sealed;
                }
                std::thread::sleep(std::time::Duration::from_millis(interval_ms));
            };
            Ok(format!("watched {frames} frame(s); sealed: {sealed}\n"))
        }
    }
}

/// Renders one `fairsched watch` frame from the three live views a poll
/// collects: `/v1/status`, `/v1/fairness`, and the `/metrics` exposition
/// (the source of server-side submit latency quantiles).
fn render_watch_frame(
    s: &fairsched_served::StatusResponse,
    fairness: &fairsched_served::json::Json,
    metrics_text: &str,
) -> String {
    use fairsched_served::json::Json;
    let f_u64 = |key: &str| fairness.get(key).and_then(Json::as_u64).unwrap_or(0);
    let f_f64 = |key: &str| fairness.get(key).and_then(Json::as_f64).unwrap_or(0.0);

    // Server-side request accounting, straight from the exposition. A
    // scrape that fails to parse renders as zeros rather than killing
    // the watch loop — the daemon's own tests pin parseability.
    let samples = parse_exposition(metrics_text).unwrap_or_default();
    // fold, not sum: an empty f64 Sum starts at -0.0 and would render
    // a zero-traffic daemon as "-0 requests".
    let total = |name: &str| -> f64 {
        samples
            .iter()
            .filter(|smp| smp.name == name)
            .fold(0.0, |acc, smp| acc + smp.value)
    };
    let requests = total("fairschedd_http_requests_total");
    let errors = total("fairschedd_http_errors_total");
    let mut submit_buckets: Vec<(f64, u64)> = samples
        .iter()
        .filter(|smp| {
            smp.name == "fairschedd_http_request_duration_ns_bucket"
                && smp.label("route") == Some("/v1/jobs")
        })
        .filter_map(|smp| {
            let le = smp.label("le")?;
            let bound = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().ok()?
            };
            Some((bound, smp.value as u64))
        })
        .collect();
    submit_buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
    let q = |p: f64| quantile_from_buckets(&submit_buckets, p) / 1e3;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- t={} (granted {}){} --",
        s.now,
        s.granted,
        if s.sealed { " SEALED" } else { "" }
    );
    let _ = writeln!(
        out,
        "jobs:     {} queued, {} running, {} accepted, {} completed ({} nodes free)",
        s.queued, s.running, s.accepted, s.completed, s.free
    );
    let _ = writeln!(
        out,
        "fairness: {:.1}% unfair of {} scored, total miss {}s, mean wait {:.1}s, mean slowdown {:.2}",
        f_f64("percent_unfair") * 100.0,
        f_u64("scored"),
        f_u64("total_miss"),
        f_f64("mean_wait"),
        f_f64("mean_slowdown"),
    );
    let _ = writeln!(
        out,
        "live:     {} past FST (worst {}s), oldest queued {}s, utilization {:.2}",
        f_u64("live_fst_misses"),
        f_u64("worst_live_miss"),
        f_u64("starvation_age"),
        f_f64("utilization"),
    );
    let _ = writeln!(
        out,
        "http:     {requests:.0} requests ({errors:.0} errors), submit p50/p95/p99 = {:.0}/{:.0}/{:.0} us",
        q(0.50),
        q(0.95),
        q(0.99),
    );
    let _ = writeln!(
        out,
        "service:  {:.0} workers busy, accept queue {:.0}, journal {:.0} B in {:.0} batches",
        total("served_pool_workers_busy"),
        total("served_accept_queue_depth"),
        total("served_journal_bytes"),
        total("served_journal_batches"),
    );
    out
}

fn parse_addr(s: &str) -> Result<std::net::SocketAddr, UsageError> {
    s.parse()
        .map_err(|_| UsageError(format!("--addr needs HOST:PORT, got {s:?}")))
}

fn lookup(id: &str) -> Result<PolicySpec, UsageError> {
    PolicySpec::parse(id).map_err(|e| UsageError(format!("{e}; try `fairsched help`")))
}

/// Loads a trace and returns it with the (empty) start of the command's
/// output. When the lenient SWF reader dropped records it warns through
/// the `fairsched_obs::log` facade — visible on stderr unless `--quiet`,
/// capturable in tests — so silent cleaning never looks like a complete
/// trace.
fn load_trace(
    path: &str,
    nodes: u32,
) -> Result<(Vec<fairsched_workload::job::Job>, String), Box<dyn std::error::Error>> {
    let parsed = read_swf_file(path)?;
    if parsed.jobs.is_empty() {
        return Err(Box::new(UsageError(format!("{path} holds no usable jobs"))));
    }
    if let Some(too_wide) = parsed.jobs.iter().find(|j| j.nodes > nodes) {
        return Err(Box::new(UsageError(format!(
            "{} requests {} nodes but the machine has {nodes}; pass a larger --nodes",
            too_wide.id, too_wide.nodes
        ))));
    }
    if parsed.skipped_malformed + parsed.skipped_degenerate > 0 {
        log::warn(format!(
            "{path} skipped {} malformed and {} degenerate record(s)",
            parsed.skipped_malformed, parsed.skipped_degenerate
        ));
    }
    Ok((parsed.jobs, String::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_generate_with_defaults_and_overrides() {
        let cmd = parse(&args("generate --out /tmp/x.swf")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                seed: 42,
                scale: 1.0,
                nodes: DEFAULT_NODES,
                out: "/tmp/x.swf".into()
            }
        );
        let cmd = parse(&args(
            "generate --seed 7 --scale 0.1 --nodes 256 --out t.swf",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                seed: 7,
                scale: 0.1,
                nodes: 256,
                out: "t.swf".into()
            }
        );
    }

    #[test]
    fn rejects_bad_flags_with_messages() {
        assert!(parse(&args("generate")).unwrap_err().0.contains("--out"));
        assert!(parse(&args("generate --scale 2.0 --out x"))
            .unwrap_err()
            .0
            .contains("--scale"));
        assert!(parse(&args("generate --seed abc --out x"))
            .unwrap_err()
            .0
            .contains("--seed"));
        assert!(parse(&args("frobnicate"))
            .unwrap_err()
            .0
            .contains("unknown subcommand"));
        assert!(parse(&args("simulate --trace t.swf"))
            .unwrap_err()
            .0
            .contains("--policy"));
    }

    #[test]
    fn compare_collects_repeated_policy_flags() {
        let cmd = parse(&args(
            "compare --trace t.swf --policy cons.nomax --policy easy.nomax",
        ))
        .unwrap();
        match cmd {
            Command::Compare { policies, .. } => {
                assert_eq!(policies, vec!["cons.nomax", "easy.nomax"]);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn fault_flags_parse_into_a_fault_config() {
        let cmd = parse(&args(
            "simulate --trace t.swf --policy cons.nomax --mtbf 86400 \
             --crash-rate 0.05 --resilience resume --fault-seed 9",
        ))
        .unwrap();
        match cmd {
            Command::Simulate { faults, .. } => {
                assert_eq!(faults.node_mtbf, Some(86_400));
                assert!((faults.job_crash_rate - 0.05).abs() < 1e-12);
                assert_eq!(faults.resilience, ResiliencePolicy::ChunkResume);
                assert_eq!(faults.seed, 9);
                assert!(faults.enabled());
            }
            other => panic!("parsed {other:?}"),
        }
        // Without the flags faults stay disabled.
        match parse(&args("simulate --trace t.swf --policy cons.nomax")).unwrap() {
            Command::Simulate { faults, .. } => {
                assert_eq!(faults, FaultConfig::default());
                assert!(!faults.enabled());
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn bad_fault_flags_are_usage_errors() {
        let base = "compare --trace t.swf";
        assert!(parse(&args(&format!("{base} --resilience retry")))
            .unwrap_err()
            .0
            .contains("--resilience"));
        assert!(parse(&args(&format!("{base} --mtbf soon")))
            .unwrap_err()
            .0
            .contains("--mtbf"));
        // Validation runs at parse time: rate 1.0 would never terminate.
        assert!(parse(&args(&format!("{base} --crash-rate 1.0")))
            .unwrap_err()
            .0
            .contains("crash"));
        assert!(parse(&args(&format!("{base} --mtbf 0")))
            .unwrap_err()
            .0
            .contains("mtbf"));
    }

    #[test]
    fn a_flag_without_a_value_is_an_error_not_ignored() {
        // A trailing valueless flag must not silently fall back to the
        // default — `--mtbf` alone would otherwise run fault-free.
        for cmd in [
            "simulate --trace t.swf --policy cons.72max --mtbf",
            "simulate --trace t.swf --policy cons.72max --crash-rate",
            "compare --trace t.swf --policy",
            "generate --out f.swf --seed",
        ] {
            let err = parse(&args(cmd)).unwrap_err();
            assert!(err.0.contains("needs a value"), "{cmd}: {}", err.0);
        }
    }

    #[test]
    fn help_paths() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
        let text = execute(Command::Help).unwrap();
        assert!(text.contains("USAGE"));
        assert!(text.contains("cons.72max"));
    }

    #[test]
    fn end_to_end_generate_simulate_compare_audit() {
        let dir = std::env::temp_dir().join("fairsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.swf");
        let out = execute(Command::Generate {
            seed: 3,
            scale: 0.02,
            nodes: 1024,
            out: path.to_str().unwrap().into(),
        })
        .unwrap();
        assert!(out.contains("wrote"));

        let sim = execute(Command::Simulate {
            trace: path.to_str().unwrap().into(),
            policy: "cplant24.nomax.all".into(),
            nodes: 1024,
            faults: FaultConfig::default(),
            trace_out: None,
        })
        .unwrap();
        assert!(sim.contains("utilization"));
        assert!(sim.contains("avg FST miss"));
        assert!(
            !sim.contains("goodput"),
            "fault lines only appear with faults on"
        );

        let cmp = execute(Command::Compare {
            trace: path.to_str().unwrap().into(),
            policies: vec!["cons.nomax".into(), "easy.nomax".into()],
            nodes: 1024,
            faults: FaultConfig::default(),
        })
        .unwrap();
        assert!(cmp.contains("cons.nomax"));
        assert!(cmp.contains("easy.nomax"));

        let faulted = execute(Command::Simulate {
            trace: path.to_str().unwrap().into(),
            policy: "cplant24.nomax.all".into(),
            nodes: 1024,
            faults: FaultConfig {
                job_crash_rate: 0.2,
                seed: 3,
                ..FaultConfig::default()
            },
            trace_out: None,
        })
        .unwrap();
        assert!(faulted.contains("goodput"));
        assert!(faulted.contains("interrupted"));

        let audit = execute(Command::Audit {
            trace: path.to_str().unwrap().into(),
            policy: "cons.72max".into(),
            nodes: 1024,
        })
        .unwrap();
        assert!(audit.contains("per-user fairness"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_policy_and_missing_file_error_cleanly() {
        let err = execute(Command::Simulate {
            trace: "/nonexistent.swf".into(),
            policy: "cplant24.nomax.all".into(),
            nodes: 1024,
            faults: FaultConfig::default(),
            trace_out: None,
        })
        .unwrap_err();
        assert!(
            err.to_string().contains("nonexistent") || err.to_string().contains("No such file")
        );

        let err = lookup("not-a-policy").unwrap_err();
        assert!(err.to_string().contains("not-a-policy"), "{err}");
        assert!(err.to_string().contains("rdepth<n>"), "{err}");
    }

    #[test]
    fn parameterized_and_size_based_ids_resolve() {
        use fairsched_sim::EngineKind;
        assert_eq!(
            lookup("rdepth4.nomax").unwrap().engine,
            EngineKind::ReservationDepth(4)
        );
        assert_eq!(lookup("fsp.nomax").unwrap().engine, EngineKind::Fsp);
        assert_eq!(lookup("las.72max").unwrap().engine, EngineKind::Las);
        assert_eq!(lookup("hfsp.nomax").unwrap().engine, EngineKind::Hfsp);
        // A sweep grid naming an unknown cell is rejected up front with the
        // offending id, never silently dropped from the grid.
        let err = execute(
            parse(&args(
                "sweep --journal /tmp/x.jsonl --grid cons.nomax,typo.id",
            ))
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("typo.id"), "{err}");
    }

    #[test]
    fn too_wide_trace_is_a_usage_error_not_a_panic() {
        let dir = std::env::temp_dir().join("fairsched-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wide.swf");
        let jobs = vec![fairsched_workload::job::Job::new(1, 1, 1, 0, 512, 100, 100)];
        fairsched_workload::swf::write_swf_file(&path, &jobs, 512, "wide").unwrap();
        let err = execute(Command::Simulate {
            trace: path.to_str().unwrap().into(),
            policy: "cons.nomax".into(),
            nodes: 64,
            faults: FaultConfig::default(),
            trace_out: None,
        })
        .unwrap_err();
        assert!(err.to_string().contains("--nodes"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn skipped_swf_records_warn_through_the_log_facade() {
        let dir = std::env::temp_dir().join("fairsched-cli-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dirty.swf");
        std::fs::write(
            &path,
            "; Version: 2\n\
             1 0 -1 100 4 -1 -1 4 900 -1 1 3 7 -1 -1 -1 -1 -1\n\
             2 5 -1 0 4 -1 -1 4 900 -1 1 3 7 -1 -1 -1 -1 -1\n\
             garbage line\n",
        )
        .unwrap();
        let mut result = None;
        let logs = fairsched_obs::log::capture(|| {
            result = Some(execute(Command::Simulate {
                trace: path.to_str().unwrap().into(),
                policy: "cons.nomax".into(),
                nodes: 64,
                faults: FaultConfig::default(),
                trace_out: None,
            }));
        });
        let out = result.unwrap().unwrap();
        // The diagnostic rides the facade (so --quiet can drop it), not
        // the command's stdout.
        assert!(!out.contains("warning"));
        assert!(logs.iter().any(|(level, msg)| {
            *level == fairsched_obs::log::Level::Warn
                && msg.contains("1 malformed and 1 degenerate")
        }));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compare_accepts_fault_flags_but_audit_and_generate_reject_them() {
        // Satellite contract: compare runs under a fault model...
        match parse(&args(
            "compare --trace t.swf --mtbf 86400 --crash-rate 0.05 --fault-seed 2",
        ))
        .unwrap()
        {
            Command::Compare { faults, .. } => {
                assert_eq!(faults.node_mtbf, Some(86_400));
                assert!((faults.job_crash_rate - 0.05).abs() < 1e-12);
                assert_eq!(faults.seed, 2);
            }
            other => panic!("parsed {other:?}"),
        }
        // ...while subcommands that cannot honor fault flags refuse them
        // instead of silently running fault-free.
        for (cmd, flag) in [
            (
                "audit --trace t.swf --policy cons.nomax --mtbf 60",
                "--mtbf",
            ),
            (
                "audit --trace t.swf --policy cons.nomax --crash-rate 0.1",
                "--crash-rate",
            ),
            ("generate --out x.swf --fault-seed 1", "--fault-seed"),
            ("generate --out x.swf --resilience resume", "--resilience"),
        ] {
            let err = parse(&args(cmd)).unwrap_err();
            assert!(err.0.contains(flag), "{cmd}: {}", err.0);
            assert!(err.0.contains("does not take"), "{cmd}: {}", err.0);
        }
        // Typos are rejected everywhere, not just fault flags.
        assert!(parse(&args("simulate --trace t.swf --policy x --nods 4"))
            .unwrap_err()
            .0
            .contains("--nods"));
    }

    #[test]
    fn parses_profile_and_explain() {
        match parse(&args(
            "profile --trace t.swf --policy cons.nomax --mtbf 3600",
        ))
        .unwrap()
        {
            Command::Profile { policy, faults, .. } => {
                assert_eq!(policy, "cons.nomax");
                assert_eq!(faults.node_mtbf, Some(3600));
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&args("explain --trace t.swf --policy easy.nomax --job 17")).unwrap() {
            Command::Explain { job, .. } => assert_eq!(job, Some(17)),
            other => panic!("parsed {other:?}"),
        }
        match parse(&args("explain --trace t.swf --policy easy.nomax")).unwrap() {
            Command::Explain { job, .. } => assert_eq!(job, None),
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&args("explain --trace t.swf --policy x --job soon"))
            .unwrap_err()
            .0
            .contains("--job"));
    }

    #[test]
    fn parses_sweep_with_defaults_and_overrides() {
        match parse(&args("sweep --journal s.jsonl")).unwrap() {
            Command::Sweep {
                journal,
                policies,
                seeds,
                scale,
                nodes,
                timeout_per_cell,
                max_retries,
                resume,
                threads,
                faults,
            } => {
                assert_eq!(journal, "s.jsonl");
                assert!(policies.is_empty(), "empty = the paper's nine");
                assert_eq!(seeds, vec![42]);
                assert!((scale - 0.02).abs() < 1e-12);
                assert_eq!(nodes, DEFAULT_NODES);
                assert_eq!(timeout_per_cell, None);
                assert_eq!(max_retries, 1);
                assert!(!resume);
                assert_eq!(threads, None);
                assert!(!faults.enabled());
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&args(
            "sweep --journal s.jsonl --grid cons.nomax,easy.nomax --seeds 1,2,3 \
             --scale 0.01 --nodes 256 --timeout-per-cell 2.5 --max-retries 3 \
             --threads 2 --resume --crash-rate 0.1 --fault-seed 7",
        ))
        .unwrap()
        {
            Command::Sweep {
                policies,
                seeds,
                timeout_per_cell,
                max_retries,
                resume,
                threads,
                faults,
                ..
            } => {
                assert_eq!(policies, vec!["cons.nomax", "easy.nomax"]);
                assert_eq!(seeds, vec![1, 2, 3]);
                assert_eq!(timeout_per_cell, Some(2.5));
                assert_eq!(max_retries, 3);
                assert!(resume);
                assert_eq!(threads, Some(2));
                assert!((faults.job_crash_rate - 0.1).abs() < 1e-12);
                assert_eq!(faults.seed, 7);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn sweep_rejects_bad_flags() {
        assert!(parse(&args("sweep")).unwrap_err().0.contains("--journal"));
        assert!(parse(&args("sweep --journal s.jsonl --seeds 1,abc"))
            .unwrap_err()
            .0
            .contains("--seeds"));
        assert!(parse(&args("sweep --journal s.jsonl --seeds ,"))
            .unwrap_err()
            .0
            .contains("at least one seed"));
        assert!(parse(&args("sweep --journal s.jsonl --timeout-per-cell 0"))
            .unwrap_err()
            .0
            .contains("--timeout-per-cell"));
        assert!(parse(&args("sweep --journal s.jsonl --scale 2.0"))
            .unwrap_err()
            .0
            .contains("--scale"));
        // `--resume` is a boolean flag: the token after it is still
        // validated, never swallowed as a value.
        assert!(parse(&args("sweep --journal s.jsonl --resume --bogus 1"))
            .unwrap_err()
            .0
            .contains("--bogus"));
        // Other subcommands reject sweep-only flags.
        assert!(parse(&args("simulate --trace t.swf --policy x --resume"))
            .unwrap_err()
            .0
            .contains("--resume"));
    }

    #[test]
    fn end_to_end_sweep_writes_a_journal_and_resumes_as_noop() {
        let dir = std::env::temp_dir().join("fairsched-cli-sweep-test");
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("grid.jsonl");
        let cmd = |resume: bool| Command::Sweep {
            journal: journal.to_str().unwrap().into(),
            policies: vec!["cons.nomax".into(), "easy.nomax".into()],
            seeds: vec![5],
            scale: 0.01,
            nodes: 1024,
            timeout_per_cell: None,
            max_retries: 0,
            resume,
            threads: Some(1),
            faults: FaultConfig::default(),
        };
        let out = execute(cmd(false)).unwrap();
        assert!(out.contains("2/2 cells ok"));
        assert!(out.contains("grid complete"));
        assert!(out.contains("cons.nomax"));
        let first = std::fs::read_to_string(&journal).unwrap();
        assert_eq!(first.lines().count(), 3, "header + one row per cell");

        // Resuming a complete journal re-simulates nothing and reports the
        // same grid.
        let again = execute(cmd(true)).unwrap();
        assert!(again.contains("2/2 cells ok"));
        assert!(again.contains("2 resumed"));
        assert_eq!(std::fs::read_to_string(&journal).unwrap(), first);
        std::fs::remove_file(&journal).unwrap();
    }

    #[test]
    fn simulate_parses_trace_out() {
        match parse(&args(
            "simulate --trace t.swf --policy cons.nomax --trace-out d.jsonl",
        ))
        .unwrap()
        {
            Command::Simulate { trace_out, .. } => {
                assert_eq!(trace_out.as_deref(), Some("d.jsonl"));
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn strip_quiet_enables_quiet_anywhere_in_argv() {
        let was = fairsched_obs::log::is_quiet();
        let mut argv = args("simulate --quiet --trace t.swf --policy cons.nomax");
        strip_quiet(&mut argv);
        assert!(fairsched_obs::log::is_quiet());
        assert!(!argv.iter().any(|a| a == "--quiet"));
        // The remaining argv parses normally.
        assert!(matches!(parse(&argv), Ok(Command::Simulate { .. })));
        fairsched_obs::log::set_quiet(was);
    }

    #[test]
    fn parses_serve_submit_and_status() {
        match parse(&args("serve")).unwrap() {
            Command::Serve {
                port,
                policy,
                clock,
                traced,
                ..
            } => {
                assert_eq!(port, 0);
                assert_eq!(policy, "easy.nomax");
                assert_eq!(clock, ClockMode::Realtime { speedup: 1.0 });
                assert!(traced);
            }
            other => panic!("parsed {other:?}"),
        }
        match parse(&args(
            "serve --port 7070 --policy cons.nomax --nodes 256 --manual --no-trace",
        ))
        .unwrap()
        {
            Command::Serve {
                port,
                policy,
                nodes,
                clock,
                traced,
                ..
            } => {
                assert_eq!(port, 7070);
                assert_eq!(policy, "cons.nomax");
                assert_eq!(nodes, 256);
                assert_eq!(clock, ClockMode::Manual);
                assert!(!traced);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&args("serve --manual --speedup 100"))
            .unwrap_err()
            .0
            .contains("mutually exclusive"));
        assert!(parse(&args("serve --port 99999"))
            .unwrap_err()
            .0
            .contains("--port"));

        match parse(&args(
            "submit --addr 127.0.0.1:7070 --id 5 --user 2 --submit 100 \
             --nodes 16 --runtime 600",
        ))
        .unwrap()
        {
            Command::Submit { addr, request } => {
                assert_eq!(addr.port(), 7070);
                assert_eq!(request.id, 5);
                assert_eq!(request.user, 2);
                assert_eq!(request.submit, 100);
                assert_eq!(request.nodes, 16);
                assert_eq!(request.runtime, 600);
                // --estimate defaults to the runtime.
                assert_eq!(request.estimate, 600);
            }
            other => panic!("parsed {other:?}"),
        }
        // Dropping any required flag (and its value) is an error naming it.
        for missing in ["--id", "--nodes", "--runtime", "--addr"] {
            let full = args("submit --addr 1.2.3.4:1 --id 1 --nodes 2 --runtime 3");
            let at = full.iter().position(|a| a == missing).unwrap();
            let mut trimmed = full.clone();
            trimmed.drain(at..at + 2);
            let err = parse(&trimmed).unwrap_err();
            assert!(err.0.contains(missing), "{missing}: {}", err.0);
        }
        assert!(
            parse(&args("submit --addr nonsense --id 1 --nodes 2 --runtime 3"))
                .unwrap_err()
                .0
                .contains("HOST:PORT")
        );

        match parse(&args("status --addr 127.0.0.1:7070")).unwrap() {
            Command::Status { addr } => assert_eq!(addr.port(), 7070),
            other => panic!("parsed {other:?}"),
        }

        match parse(&args(
            "watch --addr 127.0.0.1:7070 --interval-ms 250 --count 3",
        ))
        .unwrap()
        {
            Command::Watch {
                addr,
                interval_ms,
                count,
            } => {
                assert_eq!(addr.port(), 7070);
                assert_eq!(interval_ms, 250);
                assert_eq!(count, 3);
            }
            other => panic!("parsed {other:?}"),
        }
        // Defaults: poll every second until the session seals.
        match parse(&args("watch --addr 127.0.0.1:7070")).unwrap() {
            Command::Watch {
                interval_ms, count, ..
            } => {
                assert_eq!(interval_ms, 1000);
                assert_eq!(count, 0);
            }
            other => panic!("parsed {other:?}"),
        }
        assert!(parse(&args("watch --interval-ms 5"))
            .unwrap_err()
            .0
            .contains("--addr"));
        assert!(parse(&args("watch --addr 127.0.0.1:1 --interval-ms 0"))
            .unwrap_err()
            .0
            .contains("--interval-ms"));
        // Flag whitelists hold for the service subcommands too.
        assert!(parse(&args("status --addr 127.0.0.1:1 --mtbf 60"))
            .unwrap_err()
            .0
            .contains("--mtbf"));
        assert!(parse(&args("serve --trace t.swf"))
            .unwrap_err()
            .0
            .contains("--trace"));
    }

    #[test]
    fn watch_frames_render_all_three_views() {
        let status = fairsched_served::StatusResponse {
            policy: "easy.nomax".into(),
            nodes: 64,
            now: 500,
            granted: 600,
            queued: 3,
            running: 2,
            free: 16,
            down: 0,
            accepted: 7,
            completed: 2,
            next_event: Some(650),
            sealed: false,
        };
        let fairness = fairsched_served::json::parse(
            r#"{"percent_unfair": 0.25, "scored": 4, "total_miss": 120,
                "mean_wait": 30.5, "mean_slowdown": 1.75, "live_fst_misses": 2,
                "worst_live_miss": 90, "starvation_age": 200, "utilization": 0.8}"#,
        )
        .unwrap();
        let metrics = "\
# TYPE fairschedd_http_requests_total counter
fairschedd_http_requests_total{route=\"/v1/jobs\"} 7
fairschedd_http_requests_total{route=\"/v1/status\"} 3
# TYPE fairschedd_http_errors_total counter
fairschedd_http_errors_total{route=\"/v1/jobs\"} 1
# TYPE fairschedd_http_request_duration_ns_bucket counter
fairschedd_http_request_duration_ns_bucket{route=\"/v1/jobs\",le=\"65535\"} 6
fairschedd_http_request_duration_ns_bucket{route=\"/v1/jobs\",le=\"131071\"} 7
fairschedd_http_request_duration_ns_bucket{route=\"/v1/jobs\",le=\"+Inf\"} 7
# TYPE served_pool_workers_busy gauge
served_pool_workers_busy 3
# TYPE served_accept_queue_depth gauge
served_accept_queue_depth 12
# TYPE served_journal_bytes counter
served_journal_bytes 2048
# TYPE served_journal_batches counter
served_journal_batches 9
";
        let frame = render_watch_frame(&status, &fairness, metrics);
        assert!(frame.contains("t=500 (granted 600)"), "{frame}");
        assert!(
            frame.contains("3 queued, 2 running, 7 accepted, 2 completed"),
            "{frame}"
        );
        assert!(frame.contains("25.0% unfair of 4 scored"), "{frame}");
        assert!(frame.contains("2 past FST (worst 90s)"), "{frame}");
        assert!(frame.contains("10 requests (1 errors)"), "{frame}");
        // p50 falls in the [0, 65535]ns bucket, p99 in (65535, 131071].
        assert!(frame.contains("submit p50/p95/p99 ="), "{frame}");
        assert!(
            frame.contains("3 workers busy, accept queue 12, journal 2048 B in 9 batches"),
            "{frame}"
        );
        assert!(!frame.contains("SEALED"), "{frame}");
        // Garbage exposition degrades to zeros instead of failing.
        let degraded = render_watch_frame(&status, &fairness, "not an exposition");
        assert!(degraded.contains("0 requests (0 errors)"), "{degraded}");
    }

    #[test]
    fn serve_submit_status_round_trip_in_process() {
        let dir = std::env::temp_dir().join("fairsched-cli-serve-test");
        std::fs::create_dir_all(&dir).unwrap();
        let port_file = dir.join("port");
        let _ = std::fs::remove_file(&port_file);

        let serve = Command::Serve {
            port: 0,
            port_file: Some(port_file.to_str().unwrap().into()),
            policy: "easy.nomax".into(),
            nodes: 64,
            clock: ClockMode::Manual,
            traced: true,
        };
        let server = std::thread::spawn(move || execute(serve).unwrap());

        // Wait for the daemon to publish its port.
        let mut port = None;
        for _ in 0..200 {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = text.trim().parse::<u16>() {
                    port = Some(p);
                    break;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let port = port.expect("daemon never wrote its port file");
        let addr: std::net::SocketAddr = format!("127.0.0.1:{port}").parse().unwrap();

        let submitted = execute(Command::Submit {
            addr,
            request: SubmitRequest {
                id: 1,
                user: 1,
                group: 1,
                submit: 0,
                nodes: 64,
                runtime: 120,
                estimate: 120,
            },
        })
        .unwrap();
        assert!(submitted.contains("accepted job 1"), "{submitted}");

        let status = execute(Command::Status { addr }).unwrap();
        assert!(status.contains("accepted:     1"), "{status}");
        assert!(status.contains("policy:       easy.nomax"), "{status}");

        let watched = execute(Command::Watch {
            addr,
            interval_ms: 10,
            count: 1,
        })
        .unwrap();
        assert!(watched.contains("watched 1 frame(s)"), "{watched}");

        let client = Client::new(addr);
        client.seal().unwrap();
        client.shutdown().unwrap();
        let summary = server.join().unwrap();
        assert!(summary.contains("1 submissions accepted"), "{summary}");
        assert!(summary.contains("1 completed"), "{summary}");
        std::fs::remove_file(&port_file).unwrap();
    }

    #[test]
    fn end_to_end_profile_explain_and_trace_out() {
        let dir = std::env::temp_dir().join("fairsched-cli-test4");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.swf");
        execute(Command::Generate {
            seed: 3,
            scale: 0.02,
            nodes: 1024,
            out: path.to_str().unwrap().into(),
        })
        .unwrap();

        let profiled = execute(Command::Profile {
            trace: path.to_str().unwrap().into(),
            policy: "cons.nomax".into(),
            nodes: 1024,
            faults: FaultConfig::default(),
        })
        .unwrap();
        assert!(profiled.contains("scheduler passes"));
        assert!(profiled.contains("earliest_start calls"));

        let explained = execute(Command::Explain {
            trace: path.to_str().unwrap().into(),
            policy: "cplant24.nomax.all".into(),
            nodes: 1024,
            faults: FaultConfig::default(),
            job: None,
        })
        .unwrap();
        assert!(explained.contains("capacity wait"));
        assert!(explained.contains("policy wait"));

        let jsonl = dir.join("d.jsonl");
        let sim = execute(Command::Simulate {
            trace: path.to_str().unwrap().into(),
            policy: "easy.nomax".into(),
            nodes: 1024,
            faults: FaultConfig::default(),
            trace_out: Some(jsonl.to_str().unwrap().into()),
        })
        .unwrap();
        assert!(sim.contains("trace records"));
        let text = std::fs::read_to_string(&jsonl).unwrap();
        assert!(text.lines().count() > 0);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert!(text.contains("\"type\":\"job_started\""));

        std::fs::remove_file(&jsonl).unwrap();
        std::fs::remove_file(&path).unwrap();
    }
}
