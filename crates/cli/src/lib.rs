//! # fairsched-cli
//!
//! The command-line face of the workspace. Four subcommands:
//!
//! ```text
//! fairsched generate --seed 42 --scale 0.1 --nodes 1024 --out trace.swf
//! fairsched simulate --trace trace.swf --policy cplant24.nomax.all
//! fairsched compare  --trace trace.swf [--policy A --policy B …]
//! fairsched audit    --trace trace.swf --policy cons.72max
//! ```
//!
//! All logic lives in this library (parsing, dispatch, rendering) so it is
//! unit-testable; `main.rs` is a two-liner. Argument parsing is hand-rolled:
//! four flags per command do not justify a dependency.

use fairsched_core::policy::PolicySpec;
use fairsched_core::runner::{try_run_policy, RunOptions};
use fairsched_core::sweep::try_run_policies;
use fairsched_metrics::fairness::peruser::heavy_vs_light_miss;
use fairsched_sim::{FaultConfig, ResiliencePolicy};
use fairsched_workload::swf::{read_swf_file, write_swf_file};
use fairsched_workload::synthetic::DEFAULT_NODES;
use fairsched_workload::time::format_duration;
use fairsched_workload::CplantModel;
use std::fmt::Write as _;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic trace and write it as SWF.
    Generate {
        /// Generator seed.
        seed: u64,
        /// Fraction of the Table-1 mix.
        scale: f64,
        /// Machine size.
        nodes: u32,
        /// Output path.
        out: String,
    },
    /// Simulate one policy over a trace and print its metrics.
    Simulate {
        /// SWF trace path.
        trace: String,
        /// Policy id (see `PolicySpec::by_id`).
        policy: String,
        /// Machine size.
        nodes: u32,
        /// Fault injection (disabled unless --mtbf/--crash-rate given).
        faults: FaultConfig,
    },
    /// Run several policies (default: the paper's nine) side by side.
    Compare {
        /// SWF trace path.
        trace: String,
        /// Policy ids; empty = the paper's nine.
        policies: Vec<String>,
        /// Machine size.
        nodes: u32,
        /// Fault injection (disabled unless --mtbf/--crash-rate given).
        faults: FaultConfig,
    },
    /// Per-user fairness audit of one policy.
    Audit {
        /// SWF trace path.
        trace: String,
        /// Policy id.
        policy: String,
        /// Machine size.
        nodes: u32,
    },
    /// Print usage.
    Help,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct UsageError(pub String);

impl std::fmt::Display for UsageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for UsageError {}

/// The usage text.
pub const USAGE: &str = "\
fairsched — parallel job scheduling fairness toolkit

USAGE:
  fairsched generate [--seed N] [--scale F] [--nodes N] --out FILE.swf
  fairsched simulate --trace FILE.swf --policy ID [--nodes N] [FAULTS]
  fairsched compare  --trace FILE.swf [--policy ID]... [--nodes N] [FAULTS]
  fairsched audit    --trace FILE.swf --policy ID [--nodes N]
  fairsched help

FAULTS (deterministic fault injection; off by default):
  --mtbf SECONDS          per-node mean time between failures
  --crash-rate F          probability in [0, 1) that a submission crashes
  --resilience POLICY     requeue (rerun from scratch) or resume (keep work)
  --fault-seed N          seed for the fault timeline (default 0)

POLICY IDS:
  cplant24.nomax.all   cplant72.nomax.all   cplant24.nomax.fair
  cplant24.72max.all   cplant72.72max.fair  cons.nomax  cons.72max
  consdyn.nomax        consdyn.72max        easy.nomax  fcfs.nobackfill
";

/// Parses argv (without the program name).
pub fn parse(args: &[String]) -> Result<Command, UsageError> {
    let mut it = args.iter();
    let sub = it.next().map(String::as_str).unwrap_or("help");
    let rest: Vec<&String> = it.collect();

    // A flag that appears without a following value (e.g. `--mtbf` as the
    // last argument) is an error, not an absent flag — silently ignoring it
    // would run a different simulation than the user asked for.
    let flag = |name: &str| -> Result<Option<&str>, UsageError> {
        match rest.iter().position(|a| a.as_str() == name) {
            None => Ok(None),
            Some(i) => match rest.get(i + 1) {
                Some(v) => Ok(Some(v.as_str())),
                None => Err(UsageError(format!("{name} needs a value"))),
            },
        }
    };
    let flags_all = |name: &str| -> Result<Vec<String>, UsageError> {
        let mut out = Vec::new();
        for (i, a) in rest.iter().enumerate() {
            if a.as_str() == name {
                match rest.get(i + 1) {
                    Some(v) => out.push(v.to_string()),
                    None => return Err(UsageError(format!("{name} needs a value"))),
                }
            }
        }
        Ok(out)
    };
    let parse_u64 = |name: &str, default: u64| -> Result<u64, UsageError> {
        match flag(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| UsageError(format!("{name} needs an integer, got {v:?}"))),
        }
    };
    let parse_u32 = |name: &str, default: u32| -> Result<u32, UsageError> {
        match flag(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| UsageError(format!("{name} needs an integer, got {v:?}"))),
        }
    };
    let parse_f64 = |name: &str, default: f64| -> Result<f64, UsageError> {
        match flag(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| UsageError(format!("{name} needs a number, got {v:?}"))),
        }
    };
    let required = |name: &str| -> Result<String, UsageError> {
        flag(name)?
            .map(str::to_string)
            .ok_or_else(|| UsageError(format!("missing required {name}")))
    };
    let parse_faults = || -> Result<FaultConfig, UsageError> {
        let node_mtbf = match flag("--mtbf")? {
            None => None,
            Some(v) => Some(
                v.parse()
                    .map_err(|_| UsageError(format!("--mtbf needs an integer, got {v:?}")))?,
            ),
        };
        let resilience = match flag("--resilience")? {
            None | Some("requeue") => ResiliencePolicy::RequeueFromScratch,
            Some("resume") => ResiliencePolicy::ChunkResume,
            Some(other) => {
                return Err(UsageError(format!(
                    "--resilience must be `requeue` or `resume`, got {other:?}"
                )))
            }
        };
        let cfg = FaultConfig {
            node_mtbf,
            job_crash_rate: parse_f64("--crash-rate", 0.0)?,
            resilience,
            seed: parse_u64("--fault-seed", 0)?,
            ..FaultConfig::default()
        };
        cfg.validate().map_err(UsageError)?;
        Ok(cfg)
    };

    match sub {
        "generate" => Ok(Command::Generate {
            seed: parse_u64("--seed", 42)?,
            scale: {
                let s = parse_f64("--scale", 1.0)?;
                if !(s > 0.0 && s <= 1.0) {
                    return Err(UsageError(format!("--scale must be in (0, 1], got {s}")));
                }
                s
            },
            nodes: parse_u32("--nodes", DEFAULT_NODES)?,
            out: required("--out")?,
        }),
        "simulate" => Ok(Command::Simulate {
            trace: required("--trace")?,
            policy: required("--policy")?,
            nodes: parse_u32("--nodes", DEFAULT_NODES)?,
            faults: parse_faults()?,
        }),
        "compare" => Ok(Command::Compare {
            trace: required("--trace")?,
            policies: flags_all("--policy")?,
            nodes: parse_u32("--nodes", DEFAULT_NODES)?,
            faults: parse_faults()?,
        }),
        "audit" => Ok(Command::Audit {
            trace: required("--trace")?,
            policy: required("--policy")?,
            nodes: parse_u32("--nodes", DEFAULT_NODES)?,
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(UsageError(format!(
            "unknown subcommand {other:?}; try `fairsched help`"
        ))),
    }
}

/// Executes a command, returning the text to print.
pub fn execute(cmd: Command) -> Result<String, Box<dyn std::error::Error>> {
    match cmd {
        Command::Help => Ok(USAGE.to_string()),
        Command::Generate {
            seed,
            scale,
            nodes,
            out,
        } => {
            let trace = CplantModel::new(seed)
                .with_nodes(nodes)
                .with_scale(scale)
                .generate();
            write_swf_file(
                &out,
                &trace,
                nodes,
                &format!("fairsched generate --seed {seed} --scale {scale} --nodes {nodes}"),
            )?;
            Ok(format!("wrote {} jobs to {out}\n", trace.len()))
        }
        Command::Simulate {
            trace,
            policy,
            nodes,
            faults,
        } => {
            let (jobs, mut out) = load_trace(&trace, nodes)?;
            let spec = lookup(&policy)?;
            // The panic fence turns simulator aborts (e.g. a diverging
            // fault configuration) into a clean error line, not a backtrace.
            let outcome = try_run_policies(&jobs, std::slice::from_ref(&spec), nodes, &faults)
                .pop()
                .expect("one spec in, one result out")
                .map_err(Box::new)?;
            let m = outcome.metrics();
            writeln!(out, "policy:            {}", outcome.policy)?;
            writeln!(out, "jobs:              {}", jobs.len())?;
            writeln!(out, "utilization:       {:.1}%", 100.0 * m.utilization)?;
            writeln!(out, "loss of capacity:  {:.1}%", 100.0 * m.loss_of_capacity)?;
            writeln!(
                out,
                "avg turnaround:    {}",
                format_duration(m.average_turnaround as u64)
            )?;
            writeln!(out, "unfair jobs:       {:.2}%", 100.0 * m.percent_unfair)?;
            writeln!(
                out,
                "avg FST miss:      {}",
                format_duration(m.average_miss_time as u64)
            )?;
            if faults.enabled() {
                let split = outcome.resilience();
                writeln!(out, "goodput:           {:.1}%", 100.0 * split.goodput)?;
                writeln!(
                    out,
                    "interrupted:       {} of {} submissions",
                    split.interrupted_count(),
                    outcome.fairness.entries.len(),
                )?;
                writeln!(
                    out,
                    "down capacity:     {:.0} node-hours",
                    outcome.schedule.down_nodeseconds / 3600.0
                )?;
                writeln!(
                    out,
                    "miss (interrupted): {}   (clean): {}",
                    format_duration(split.interrupted.average_miss_time() as u64),
                    format_duration(split.clean.average_miss_time() as u64),
                )?;
            }
            Ok(out)
        }
        Command::Compare {
            trace,
            policies,
            nodes,
            faults,
        } => {
            let (jobs, mut out) = load_trace(&trace, nodes)?;
            let specs: Vec<PolicySpec> = if policies.is_empty() {
                PolicySpec::paper_policies()
            } else {
                policies
                    .iter()
                    .map(|id| lookup(id))
                    .collect::<Result<_, _>>()?
            };
            let results = try_run_policies(&jobs, &specs, nodes, &faults);
            writeln!(
                out,
                "{:<22} {:>9} {:>12} {:>14} {:>8}",
                "policy", "unfair%", "avg miss(s)", "turnaround(s)", "LOC%"
            )?;
            let mut failures = Vec::new();
            for result in &results {
                match result {
                    Ok(o) => {
                        let m = o.metrics();
                        writeln!(
                            out,
                            "{:<22} {:>8.2}% {:>12.0} {:>14.0} {:>7.2}%",
                            o.policy,
                            100.0 * m.percent_unfair,
                            m.average_miss_time,
                            m.average_turnaround,
                            100.0 * m.loss_of_capacity,
                        )?;
                    }
                    Err(e) => {
                        writeln!(out, "{:<22} FAILED", e.policy)?;
                        failures.push(e);
                    }
                }
            }
            for e in failures {
                writeln!(out, "warning: {e}")?;
            }
            Ok(out)
        }
        Command::Audit {
            trace,
            policy,
            nodes,
        } => {
            let (jobs, mut out) = load_trace(&trace, nodes)?;
            let spec = lookup(&policy)?;
            let opts = RunOptions {
                per_user: true,
                ..Default::default()
            };
            let run = try_run_policy(&jobs, &spec, nodes, &opts)?;
            let users = run.per_user.expect("requested in RunOptions");
            writeln!(
                out,
                "per-user fairness under {} ({} users):",
                run.outcome.policy,
                users.len()
            )?;
            writeln!(
                out,
                "{:<8} {:>6} {:>14} {:>9} {:>13}",
                "user", "jobs", "proc-hours", "unfair%", "mean miss(s)"
            )?;
            for u in users.iter().take(15) {
                writeln!(
                    out,
                    "{:<8} {:>6} {:>14.0} {:>8.1}% {:>13.0}",
                    u.user.to_string(),
                    u.jobs,
                    u.proc_seconds / 3600.0,
                    100.0 * u.percent_unfair(),
                    u.mean_miss(),
                )?;
            }
            let (heavy, light) = heavy_vs_light_miss(&users, 0.1);
            writeln!(
                out,
                "top-10% users mean miss {heavy:.0}s; others {light:.0}s"
            )?;
            Ok(out)
        }
    }
}

fn lookup(id: &str) -> Result<PolicySpec, UsageError> {
    PolicySpec::by_id(id)
        .ok_or_else(|| UsageError(format!("unknown policy {id:?}; try `fairsched help`")))
}

/// Loads a trace and returns it with the start of the command's output: a
/// one-line warning when the lenient SWF reader dropped records, so silent
/// cleaning never looks like a complete trace.
fn load_trace(
    path: &str,
    nodes: u32,
) -> Result<(Vec<fairsched_workload::job::Job>, String), Box<dyn std::error::Error>> {
    let parsed = read_swf_file(path)?;
    if parsed.jobs.is_empty() {
        return Err(Box::new(UsageError(format!("{path} holds no usable jobs"))));
    }
    if let Some(too_wide) = parsed.jobs.iter().find(|j| j.nodes > nodes) {
        return Err(Box::new(UsageError(format!(
            "{} requests {} nodes but the machine has {nodes}; pass a larger --nodes",
            too_wide.id, too_wide.nodes
        ))));
    }
    let mut out = String::new();
    if parsed.skipped_malformed + parsed.skipped_degenerate > 0 {
        writeln!(
            out,
            "warning: {path} skipped {} malformed and {} degenerate record(s)",
            parsed.skipped_malformed, parsed.skipped_degenerate
        )?;
    }
    Ok((parsed.jobs, out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_generate_with_defaults_and_overrides() {
        let cmd = parse(&args("generate --out /tmp/x.swf")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                seed: 42,
                scale: 1.0,
                nodes: DEFAULT_NODES,
                out: "/tmp/x.swf".into()
            }
        );
        let cmd = parse(&args(
            "generate --seed 7 --scale 0.1 --nodes 256 --out t.swf",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                seed: 7,
                scale: 0.1,
                nodes: 256,
                out: "t.swf".into()
            }
        );
    }

    #[test]
    fn rejects_bad_flags_with_messages() {
        assert!(parse(&args("generate")).unwrap_err().0.contains("--out"));
        assert!(parse(&args("generate --scale 2.0 --out x"))
            .unwrap_err()
            .0
            .contains("--scale"));
        assert!(parse(&args("generate --seed abc --out x"))
            .unwrap_err()
            .0
            .contains("--seed"));
        assert!(parse(&args("frobnicate"))
            .unwrap_err()
            .0
            .contains("unknown subcommand"));
        assert!(parse(&args("simulate --trace t.swf"))
            .unwrap_err()
            .0
            .contains("--policy"));
    }

    #[test]
    fn compare_collects_repeated_policy_flags() {
        let cmd = parse(&args(
            "compare --trace t.swf --policy cons.nomax --policy easy.nomax",
        ))
        .unwrap();
        match cmd {
            Command::Compare { policies, .. } => {
                assert_eq!(policies, vec!["cons.nomax", "easy.nomax"]);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn fault_flags_parse_into_a_fault_config() {
        let cmd = parse(&args(
            "simulate --trace t.swf --policy cons.nomax --mtbf 86400 \
             --crash-rate 0.05 --resilience resume --fault-seed 9",
        ))
        .unwrap();
        match cmd {
            Command::Simulate { faults, .. } => {
                assert_eq!(faults.node_mtbf, Some(86_400));
                assert!((faults.job_crash_rate - 0.05).abs() < 1e-12);
                assert_eq!(faults.resilience, ResiliencePolicy::ChunkResume);
                assert_eq!(faults.seed, 9);
                assert!(faults.enabled());
            }
            other => panic!("parsed {other:?}"),
        }
        // Without the flags faults stay disabled.
        match parse(&args("simulate --trace t.swf --policy cons.nomax")).unwrap() {
            Command::Simulate { faults, .. } => {
                assert_eq!(faults, FaultConfig::default());
                assert!(!faults.enabled());
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn bad_fault_flags_are_usage_errors() {
        let base = "compare --trace t.swf";
        assert!(parse(&args(&format!("{base} --resilience retry")))
            .unwrap_err()
            .0
            .contains("--resilience"));
        assert!(parse(&args(&format!("{base} --mtbf soon")))
            .unwrap_err()
            .0
            .contains("--mtbf"));
        // Validation runs at parse time: rate 1.0 would never terminate.
        assert!(parse(&args(&format!("{base} --crash-rate 1.0")))
            .unwrap_err()
            .0
            .contains("crash"));
        assert!(parse(&args(&format!("{base} --mtbf 0")))
            .unwrap_err()
            .0
            .contains("mtbf"));
    }

    #[test]
    fn a_flag_without_a_value_is_an_error_not_ignored() {
        // A trailing valueless flag must not silently fall back to the
        // default — `--mtbf` alone would otherwise run fault-free.
        for cmd in [
            "simulate --trace t.swf --policy cons.72max --mtbf",
            "simulate --trace t.swf --policy cons.72max --crash-rate",
            "compare --trace t.swf --policy",
            "generate --out f.swf --seed",
        ] {
            let err = parse(&args(cmd)).unwrap_err();
            assert!(err.0.contains("needs a value"), "{cmd}: {}", err.0);
        }
    }

    #[test]
    fn help_paths() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
        let text = execute(Command::Help).unwrap();
        assert!(text.contains("USAGE"));
        assert!(text.contains("cons.72max"));
    }

    #[test]
    fn end_to_end_generate_simulate_compare_audit() {
        let dir = std::env::temp_dir().join("fairsched-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.swf");
        let out = execute(Command::Generate {
            seed: 3,
            scale: 0.02,
            nodes: 1024,
            out: path.to_str().unwrap().into(),
        })
        .unwrap();
        assert!(out.contains("wrote"));

        let sim = execute(Command::Simulate {
            trace: path.to_str().unwrap().into(),
            policy: "cplant24.nomax.all".into(),
            nodes: 1024,
            faults: FaultConfig::default(),
        })
        .unwrap();
        assert!(sim.contains("utilization"));
        assert!(sim.contains("avg FST miss"));
        assert!(
            !sim.contains("goodput"),
            "fault lines only appear with faults on"
        );

        let cmp = execute(Command::Compare {
            trace: path.to_str().unwrap().into(),
            policies: vec!["cons.nomax".into(), "easy.nomax".into()],
            nodes: 1024,
            faults: FaultConfig::default(),
        })
        .unwrap();
        assert!(cmp.contains("cons.nomax"));
        assert!(cmp.contains("easy.nomax"));

        let faulted = execute(Command::Simulate {
            trace: path.to_str().unwrap().into(),
            policy: "cplant24.nomax.all".into(),
            nodes: 1024,
            faults: FaultConfig {
                job_crash_rate: 0.2,
                seed: 3,
                ..FaultConfig::default()
            },
        })
        .unwrap();
        assert!(faulted.contains("goodput"));
        assert!(faulted.contains("interrupted"));

        let audit = execute(Command::Audit {
            trace: path.to_str().unwrap().into(),
            policy: "cons.72max".into(),
            nodes: 1024,
        })
        .unwrap();
        assert!(audit.contains("per-user fairness"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unknown_policy_and_missing_file_error_cleanly() {
        let err = execute(Command::Simulate {
            trace: "/nonexistent.swf".into(),
            policy: "cplant24.nomax.all".into(),
            nodes: 1024,
            faults: FaultConfig::default(),
        })
        .unwrap_err();
        assert!(
            err.to_string().contains("nonexistent") || err.to_string().contains("No such file")
        );

        assert!(lookup("not-a-policy").is_err());
    }

    #[test]
    fn too_wide_trace_is_a_usage_error_not_a_panic() {
        let dir = std::env::temp_dir().join("fairsched-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wide.swf");
        let jobs = vec![fairsched_workload::job::Job::new(1, 1, 1, 0, 512, 100, 100)];
        fairsched_workload::swf::write_swf_file(&path, &jobs, 512, "wide").unwrap();
        let err = execute(Command::Simulate {
            trace: path.to_str().unwrap().into(),
            policy: "cons.nomax".into(),
            nodes: 64,
            faults: FaultConfig::default(),
        })
        .unwrap_err();
        assert!(err.to_string().contains("--nodes"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn skipped_swf_records_produce_a_warning_line() {
        let dir = std::env::temp_dir().join("fairsched-cli-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dirty.swf");
        std::fs::write(
            &path,
            "; Version: 2\n\
             1 0 -1 100 4 -1 -1 4 900 -1 1 3 7 -1 -1 -1 -1 -1\n\
             2 5 -1 0 4 -1 -1 4 900 -1 1 3 7 -1 -1 -1 -1 -1\n\
             garbage line\n",
        )
        .unwrap();
        let out = execute(Command::Simulate {
            trace: path.to_str().unwrap().into(),
            policy: "cons.nomax".into(),
            nodes: 64,
            faults: FaultConfig::default(),
        })
        .unwrap();
        assert!(out.contains("warning:"));
        assert!(out.contains("1 malformed and 1 degenerate"));
        std::fs::remove_file(&path).unwrap();
    }
}
