//! `fairsched` binary entry point: parse, execute, print.

fn main() {
    fairsched_obs::log::quiet_from_env();
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    fairsched_cli::strip_quiet(&mut args);
    let command = match fairsched_cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", fairsched_cli::USAGE);
            std::process::exit(2);
        }
    };
    match fairsched_cli::execute(command) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
