//! Kill-and-resume integration test for `fairsched sweep`.
//!
//! The acceptance property of the crash-safe sweep harness: a sweep
//! SIGKILLed mid-flight and resumed with `--resume` must end with a journal
//! whose rows are byte-identical to an uninterrupted run's, and no cell
//! completed before the kill may be simulated again.

use std::path::Path;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_fairsched");
const GRID: &str = "cons.nomax,easy.nomax,cplant24.nomax.all,fcfs.nobackfill";

fn sweep_cmd(journal: &Path, resume: bool) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args([
        "sweep",
        "--journal",
        journal.to_str().unwrap(),
        "--grid",
        GRID,
        "--seeds",
        "5,6",
        "--scale",
        "0.05",
        "--threads",
        "1",
        "--quiet",
    ]);
    if resume {
        cmd.arg("--resume");
    }
    cmd.stdout(std::process::Stdio::piped());
    cmd.stderr(std::process::Stdio::piped());
    cmd
}

/// Complete journal lines (the file is append-only JSONL; a torn final
/// line has no trailing newline and does not count).
fn complete_lines(path: &Path) -> Vec<String> {
    match std::fs::read_to_string(path) {
        Err(_) => Vec::new(),
        Ok(text) => {
            let mut lines: Vec<String> = text.split('\n').map(str::to_string).collect();
            lines.pop(); // after a trailing newline the final split is ""
            lines
        }
    }
}

/// The `"cell":N` indices of complete cell rows in the journal.
fn cell_indices(lines: &[String]) -> Vec<u64> {
    lines
        .iter()
        .filter(|l| l.contains("\"kind\":\"cell\""))
        .filter_map(|l| {
            let rest = l.split("\"cell\":").nth(1)?;
            rest.split(',').next()?.parse().ok()
        })
        .collect()
}

fn wait_success(child: Child, what: &str) -> String {
    let out = child.wait_with_output().expect("wait on fairsched");
    assert!(
        out.status.success(),
        "{what} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn a_sigkilled_sweep_resumes_to_byte_identical_results() {
    let dir = std::env::temp_dir().join(format!("fairsched-sweep-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let uninterrupted = dir.join("uninterrupted.jsonl");
    let interrupted = dir.join("interrupted.jsonl");

    // Reference: the same grid run start to finish.
    let reference = wait_success(
        sweep_cmd(&uninterrupted, false).spawn().unwrap(),
        "uninterrupted sweep",
    );
    assert!(reference.contains("8/8 cells ok"), "got:\n{reference}");
    let reference_rows = {
        let lines = complete_lines(&uninterrupted);
        lines
            .iter()
            .filter(|l| l.contains("\"kind\":\"cell\""))
            .cloned()
            .collect::<Vec<_>>()
    };
    assert_eq!(reference_rows.len(), 8);

    // Kill the same sweep as soon as its journal holds at least one
    // complete cell row but before the grid finishes.
    let mut child = sweep_cmd(&interrupted, false).spawn().unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(Instant::now() < deadline, "no journal row within 120s");
        if !cell_indices(&complete_lines(&interrupted)).is_empty() {
            break;
        }
        if child.try_wait().unwrap().is_some() {
            panic!("sweep exited before the test could kill it");
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().unwrap(); // SIGKILL: no destructors, no flush
    let _ = child.wait();

    let before = cell_indices(&complete_lines(&interrupted));
    assert!(!before.is_empty(), "the kill landed before any row");
    assert!(
        before.len() < 8,
        "the kill landed after the whole grid finished; nothing left to resume"
    );

    // Resume: completed cells are replayed, the rest are simulated.
    let resumed = wait_success(
        sweep_cmd(&interrupted, true).spawn().unwrap(),
        "resumed sweep",
    );
    assert!(resumed.contains("8/8 cells ok"), "got:\n{resumed}");
    assert!(
        resumed.contains(&format!("{} resumed", before.len())),
        "summary must report the replayed cells; got:\n{resumed}"
    );

    // No completed cell was re-simulated: each pre-kill index appears in
    // the final journal exactly once.
    let final_lines = complete_lines(&interrupted);
    let final_cells = cell_indices(&final_lines);
    for idx in &before {
        assert_eq!(
            final_cells.iter().filter(|c| *c == idx).count(),
            1,
            "cell {idx} was simulated again after resume"
        );
    }

    // The journal rows — the durable result of the sweep — are
    // byte-identical to the uninterrupted run's, independent of order.
    let mut resumed_rows: Vec<String> = final_lines
        .iter()
        .filter(|l| l.contains("\"kind\":\"cell\""))
        .cloned()
        .collect();
    let mut expected = reference_rows.clone();
    resumed_rows.sort();
    expected.sort();
    assert_eq!(resumed_rows, expected);

    std::fs::remove_dir_all(&dir).unwrap();
}
