//! Fairness audit: §4's metric survey in action. Runs one schedule and
//! scores it with every fairness metric the paper discusses — the hybrid
//! fairshare FST (its contribution), the CONS_P baseline, Sabin &
//! Sadayappan's scheduler-dependent FST, resource equality, and the Jain /
//! standard-deviation strawmen — so their disagreements are visible on real
//! data.
//!
//! ```sh
//! cargo run --release --example fairness_audit
//! ```

use fairsched::metrics::fairness::consp::{consp_fsts, consp_report};
use fairsched::metrics::fairness::jain::{jain_index, stddev};
use fairsched::metrics::fairness::sabin::sabin_fsts_parallel_sampled;
use fairsched::prelude::*;

fn main() {
    // Small scale: the Sabin metric re-simulates per sampled job.
    let nodes = 1024;
    let trace = CplantModel::new(7)
        .with_nodes(nodes)
        .with_scale(0.05)
        .generate();
    let policy = PolicySpec::baseline();
    let cfg = policy.sim_config(nodes);

    println!("auditing {} on {} jobs\n", policy.id, trace.len());

    // One simulation feeds both run-attached metrics via an ObserverSet.
    let mut hybrid_obs = HybridFstObserver::new();
    let mut equality_obs = EqualityObserver::new();
    let schedule = {
        let mut observers = ObserverSet::new();
        observers.push(&mut hybrid_obs);
        observers.push(&mut equality_obs);
        simulate(&trace, &cfg, &mut observers, SimOptions::new()).expect("baseline config is valid")
    };
    let hybrid = hybrid_obs.into_report();

    // CONS_P: one extra FCFS-conservative-perfect run.
    let consp = consp_report(&schedule, &consp_fsts(&trace, nodes));

    // Sabin FST: one truncated re-simulation per sampled job (1 in 8),
    // fanned across the warm-start prefix engine's thread pool.
    let sabin = sabin_report(
        &schedule,
        &sabin_fsts_parallel_sampled(&trace, &cfg, 8, None),
    );

    println!(
        "{:<28} {:>9} {:>14} {:>14}",
        "FST metric", "unfair%", "avg miss (s)", "miss of unfair"
    );
    for (name, report) in [
        ("hybrid fairshare (§4.1)", &hybrid),
        ("CONS_P", &consp),
        ("Sabin (1-in-8 sample)", &sabin),
    ] {
        println!(
            "{:<28} {:>8.2}% {:>14.0} {:>14.0}",
            name,
            100.0 * report.percent_unfair(),
            report.average_miss_time(),
            report.average_miss_of_unfair(),
        );
    }

    // Resource equality: schedule-relative, no FST; collected in the same
    // run as the hybrid report above.
    let equality = equality_obs.into_report();
    println!(
        "\nresource equality: total under-service {:.0} node-hours, discrimination σ {:.0} node-s",
        equality.total_underservice() / 3600.0,
        equality.discrimination_stddev(),
    );

    // The strawmen: turnaround spread punished regardless of cause.
    let turnarounds: Vec<f64> = schedule
        .records
        .iter()
        .map(|r| r.turnaround() as f64)
        .collect();
    println!(
        "strawmen: Jain index over turnaround {:.3}, turnaround σ {:.0}s",
        jain_index(&turnarounds),
        stddev(&turnarounds),
    );
    println!("\n(§4's point: the strawmen cannot distinguish burst-induced variance\nfrom scheduler-induced unfairness; the FST metrics can.)");
}
