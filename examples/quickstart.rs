//! Quickstart: generate a CPlant-like workload, run the original Sandia
//! scheduler on it, and score fairness with the paper's hybrid metric.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fairsched::prelude::*;
use fairsched::workload::time::format_duration;

fn main() {
    // A 5% slice of the Table-1 job mix keeps this instant; crank scale up
    // to 1.0 for the full 13 236-job reproduction.
    let nodes = 1024;
    let trace = CplantModel::new(42)
        .with_nodes(nodes)
        .with_scale(0.05)
        .generate();
    println!("generated {} jobs over {} weeks", trace.len(), 2);

    // The baseline CPlant policy: fairshare priority, no-guarantee
    // backfilling, 24-hour starvation queue.
    let baseline = PolicySpec::baseline();
    let outcome = run_policy(&trace, &baseline, nodes);
    let m = outcome.metrics();

    println!("policy:            {}", outcome.policy);
    println!("utilization:       {:.1}%", 100.0 * m.utilization);
    println!("loss of capacity:  {:.1}%", 100.0 * m.loss_of_capacity);
    println!(
        "avg turnaround:    {}",
        format_duration(m.average_turnaround as u64)
    );
    println!("unfair jobs:       {:.2}%", 100.0 * m.percent_unfair);
    println!(
        "avg FST miss:      {}",
        format_duration(m.average_miss_time as u64)
    );

    // The paper's remedy: conservative backfilling + 72 h runtime limits.
    let fixed = PolicySpec::by_id("cons.72max").expect("known policy");
    let fixed_outcome = run_policy(&trace, &fixed, nodes);
    let fm = fixed_outcome.metrics();
    println!();
    println!(
        "with {}: avg miss {} (was {})",
        fixed_outcome.policy,
        format_duration(fm.average_miss_time as u64),
        format_duration(m.average_miss_time as u64),
    );
}
