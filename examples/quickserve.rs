//! Quickserve: the online scheduling service in one file.
//!
//! Starts an in-process `fairschedd` on a free port, submits a handful of
//! jobs over real HTTP with the typed client, streams the decision trace
//! as it happens, explains a job's wait while it is still running, and
//! seals the session into a final schedule — demonstrating that the
//! online path reproduces exactly what the batch simulator would have
//! computed for the same jobs.
//!
//! ```sh
//! cargo run --release --example quickserve
//! ```

use fairsched::prelude::*;

fn main() {
    // A daemon under the paper's EASY baseline, manual clock: simulated
    // time moves only when we grant it, so the run is fully scripted.
    let mut daemon = Daemon::start(
        "127.0.0.1:0",
        SessionConfig {
            policy: "easy.nomax".into(),
            nodes: 64,
            clock: ClockMode::Manual,
            traced: true,
            id_floor: 0,
            ..SessionConfig::default()
        },
    )
    .expect("daemon start");
    let addr = daemon.addr();
    println!("fairschedd on {addr}\n");

    // Subscribe to the trace stream before any submission so no record
    // is missed; lines arrive as the scheduler decides, not at the end.
    let streamer = {
        let client = Client::new(addr);
        std::thread::spawn(move || client.trace_lines())
    };
    // Give the subscription a moment to attach before records flow.
    std::thread::sleep(std::time::Duration::from_millis(100));

    let client = Client::new(addr);
    let jobs = [
        // (id, user, submit, nodes, runtime)
        (1, 1, 0u64, 64, 600u64), // hogs the whole machine
        (2, 2, 10, 32, 120),      // must wait for job 1
        (3, 3, 20, 8, 60),        // narrow — a backfill candidate
        (4, 2, 700, 64, 300),     // arrives after the backlog clears
    ];
    for (id, user, submit, nodes, runtime) in jobs {
        let ack = client
            .submit(&SubmitRequest {
                id,
                user,
                group: 1,
                submit,
                nodes,
                runtime,
                estimate: runtime,
            })
            .expect("submission accepted");
        println!("submitted job {} (queue entry t={})", ack.id, ack.arrival);
    }

    // Grant enough simulated time for job 1 to finish and job 2 to start.
    let advanced = client.advance(600).expect("advance");
    println!(
        "\nadvanced to t={}: {} started, {} completed",
        advanced.now, advanced.started, advanced.completed
    );

    // Explain job 2's wait *live* — it is running right now.
    let explain = client.explain(2).expect("explain");
    println!(
        "job 2 live explain: submitted t={}, started t={}",
        explain.get("submit").and_then(|v| v.as_u64()).unwrap(),
        explain.get("start").and_then(|v| v.as_u64()).unwrap(),
    );

    // A submission dated before granted time is rejected, typed.
    match client.submit(&SubmitRequest {
        id: 99,
        user: 9,
        group: 1,
        submit: 500,
        nodes: 1,
        runtime: 10,
        estimate: 10,
    }) {
        Err(ServeError::NonMonotonicSubmit {
            submit, granted, ..
        }) => println!("rejected a late submission: t={submit} < granted t={granted}"),
        other => panic!("expected a monotonicity rejection, got {other:?}"),
    }

    // Seal: play out everything left and close the trace stream.
    let seal = client.seal().expect("seal");
    println!(
        "\nsealed: {} records, makespan {}s, utilization {:.1}%",
        seal.records,
        seal.makespan,
        100.0 * seal.utilization
    );

    let lines = streamer.join().unwrap().expect("trace stream");
    println!("streamed {} trace records; first three:", lines.len());
    for line in lines.iter().take(3) {
        println!("  {line}");
    }

    // The online session computed exactly what batch simulation would.
    let batch = {
        let trace: Vec<Job> = jobs
            .iter()
            .map(|&(id, user, submit, nodes, runtime)| {
                Job::new(id, user, 1, submit, nodes, runtime, runtime)
            })
            .collect();
        let cfg = PolicySpec::parse("easy.nomax").unwrap().sim_config(64);
        simulate(&trace, &cfg, &mut NullObserver, SimOptions::new()).unwrap()
    };
    let online = daemon.session().schedule().expect("sealed schedule");
    assert_eq!(online, batch);
    println!("\nonline schedule is byte-identical to the batch run ✓");

    client.shutdown().expect("shutdown");
    daemon.shutdown();
}
