//! Workload analysis: §2.2 of the paper as a pipeline. Generates the
//! synthetic CPlant/Ross trace, round-trips it through the Standard Workload
//! Format, and prints the characterization the paper reads off Tables 1–2
//! and Figures 3–7.
//!
//! ```sh
//! cargo run --release --example workload_analysis
//! ```

use fairsched::experiments::characterization;
use fairsched::prelude::*;
use fairsched::workload::stats::{weekly_offered_load, Summary};
use fairsched::workload::swf::{read_swf_str, write_swf_string};
use fairsched::workload::tables::{job_counts, proc_hours};
use fairsched::workload::time::TRACE_WEEKS;

fn main() {
    let nodes = 1024;
    let model = CplantModel::new(42).with_nodes(nodes);
    let trace = model.generate();
    println!(
        "generated {} jobs ({:.0} total proc-hours)\n",
        trace.len(),
        proc_hours(&trace).total()
    );

    // Round-trip through SWF v2 — the format the paper converted the raw
    // PBS/yod logs into.
    let swf = write_swf_string(&trace, nodes, "synthetic CPlant/Ross reproduction");
    let parsed = read_swf_str(&swf).expect("swf reads back");
    assert_eq!(parsed.jobs, trace, "SWF round-trip must be lossless");
    println!(
        "SWF round-trip: {} bytes, {} jobs back, {} header lines\n",
        swf.len(),
        parsed.jobs.len(),
        parsed.header.len()
    );

    // Tables 1 and 2 recomputed from the trace vs the published values.
    print!("{}", characterization::table1_report(&trace));
    println!();
    assert_eq!(job_counts(&trace).total(), 13_236);

    // Offered load (the Figure 3 input that needs no simulation).
    let offered = weekly_offered_load(&trace, nodes, TRACE_WEEKS);
    let s = Summary::of(offered.iter().copied());
    println!(
        "weekly offered load: mean {:.0}%, max {:.0}%, min {:.0}% ({} weeks over 100%)",
        100.0 * s.mean,
        100.0 * s.max,
        100.0 * s.min,
        offered.iter().filter(|&&l| l > 1.0).count(),
    );
    println!();

    // The estimate-quality figures.
    print!("{}", characterization::fig05_report(&trace));
    println!();
    print!("{}", characterization::fig06_report(&trace));
}
