//! Policy comparison: §6 of the paper in miniature. Runs all nine named
//! policies (plus EASY backfilling as an extra reference point) on the same
//! workload, in parallel, and prints the four headline metrics side by side.
//!
//! ```sh
//! cargo run --release --example policy_comparison            # 10% scale
//! FAIRSCHED_SCALE=1.0 cargo run --release --example policy_comparison
//! ```

use fairsched::core::policy::PolicySpec;
use fairsched::core::sweep::run_policies;
use fairsched::workload::CplantModel;

fn main() {
    let scale: f64 = std::env::var("FAIRSCHED_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let nodes = 1024;
    let trace = CplantModel::new(42)
        .with_nodes(nodes)
        .with_scale(scale)
        .generate();
    println!(
        "workload: {} jobs at scale {scale} on {nodes} nodes\n",
        trace.len()
    );

    let mut policies = PolicySpec::paper_policies();
    policies.push(PolicySpec::easy());

    let outcomes = run_policies(&trace, &policies, nodes);

    println!(
        "{:<22} {:>9} {:>12} {:>14} {:>8} {:>7}",
        "policy", "unfair%", "avg miss(s)", "turnaround(s)", "LOC%", "util%"
    );
    for outcome in &outcomes {
        let m = outcome.metrics();
        println!(
            "{:<22} {:>8.2}% {:>12.0} {:>14.0} {:>7.2}% {:>6.1}%",
            outcome.policy,
            100.0 * m.percent_unfair,
            m.average_miss_time,
            m.average_turnaround,
            100.0 * m.loss_of_capacity,
            100.0 * m.utilization,
        );
    }

    // The paper's conclusion, checked live: which policy improves both
    // fairness dimensions at once?
    let baseline = outcomes[0].metrics();
    println!("\nvs baseline ({}):", outcomes[0].policy);
    for outcome in &outcomes[1..] {
        let m = outcome.metrics();
        let miss = m.average_miss_time - baseline.average_miss_time;
        let turn = m.average_turnaround - baseline.average_turnaround;
        println!(
            "  {:<22} miss {:+9.0}s  turnaround {:+9.0}s",
            outcome.policy, miss, turn
        );
    }
}
