//! Policy comparison: §6 of the paper in miniature. Runs all nine named
//! policies (plus EASY backfilling as an extra reference point) on the same
//! workload, in parallel, and prints the four headline metrics side by side.
//!
//! ```sh
//! cargo run --release --example policy_comparison            # 10% scale
//! FAIRSCHED_SCALE=1.0 cargo run --release --example policy_comparison
//! ```

use fairsched::prelude::*;

fn main() {
    let scale: f64 = std::env::var("FAIRSCHED_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let nodes = 1024;
    let trace = CplantModel::new(42)
        .with_nodes(nodes)
        .with_scale(scale)
        .generate();
    println!(
        "workload: {} jobs at scale {scale} on {nodes} nodes\n",
        trace.len()
    );

    let mut policies = PolicySpec::paper_policies();
    policies.push(PolicySpec::easy());

    // The fenced sweep: a policy that fails prints one FAILED row instead
    // of aborting the comparison.
    let results = try_run_policies(&trace, &policies, nodes, &FaultConfig::default());

    println!(
        "{:<22} {:>9} {:>12} {:>14} {:>8} {:>7}",
        "policy", "unfair%", "avg miss(s)", "turnaround(s)", "LOC%", "util%"
    );
    for result in &results {
        match result {
            Ok(outcome) => {
                let m = outcome.metrics();
                println!(
                    "{:<22} {:>8.2}% {:>12.0} {:>14.0} {:>7.2}% {:>6.1}%",
                    outcome.policy,
                    100.0 * m.percent_unfair,
                    m.average_miss_time,
                    m.average_turnaround,
                    100.0 * m.loss_of_capacity,
                    100.0 * m.utilization,
                );
            }
            Err(e) => println!("{:<22} FAILED: {}", e.policy, e.reason),
        }
    }

    // The paper's conclusion, checked live: which policy improves both
    // fairness dimensions at once?
    let Some(Ok(first)) = results.first() else {
        return;
    };
    let baseline = first.metrics();
    println!("\nvs baseline ({}):", first.policy);
    for outcome in results[1..].iter().flatten() {
        let m = outcome.metrics();
        let miss = m.average_miss_time - baseline.average_miss_time;
        let turn = m.average_turnaround - baseline.average_turnaround;
        println!(
            "  {:<22} miss {:+9.0}s  turnaround {:+9.0}s",
            outcome.policy, miss, turn
        );
    }
}
